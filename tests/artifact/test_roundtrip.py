"""Artifact round-trip: views rendered from a loaded ``.cbp`` must be
byte-identical to the live render, on all three benchmarks, in both
strict (clean telemetry) and tolerant (degraded telemetry) modes."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.artifact import (
    artifact_bytes,
    read_artifact,
    snapshot_from_result,
    write_artifact,
)
from repro.pipeline import render_stage

from .conftest import FAULT_SPEC, profile_benchmark

VIEWS = ("data", "code", "hybrid", "html")

GOLDEN_DIR = Path(__file__).parent / "golden"


def roundtrip(result, tmp_path, name="run.cbp"):
    snapshot = snapshot_from_result(result)
    path = tmp_path / name
    write_artifact(str(path), snapshot)
    return snapshot, read_artifact(str(path))


class TestCleanRoundTrip:
    @pytest.mark.parametrize("view", VIEWS)
    def test_view_byte_identical(self, benchmark_name, view, tmp_path):
        result = profile_benchmark(benchmark_name)
        _, loaded = roundtrip(result, tmp_path)
        assert render_stage(loaded, view) == render_stage(result, view)

    def test_reencode_is_stable(self, benchmark_name, tmp_path):
        result = profile_benchmark(benchmark_name)
        snapshot, loaded = roundtrip(result, tmp_path)
        assert artifact_bytes(loaded) == artifact_bytes(snapshot)

    def test_counts_survive(self, benchmark_name, tmp_path):
        result = profile_benchmark(benchmark_name)
        _, loaded = roundtrip(result, tmp_path)
        pm = result.postmortem
        assert loaded.postmortem.n_user == pm.n_user
        assert loaded.postmortem.n_raw == pm.n_raw
        assert loaded.postmortem.n_runtime == pm.n_runtime
        assert loaded.report.stats == result.report.stats
        assert len(loaded.postmortem.instances) == len(pm.instances)
        assert loaded.meta.kind == "profile"

    def test_instances_survive_exactly(self, benchmark_name, tmp_path):
        result = profile_benchmark(benchmark_name)
        _, loaded = roundtrip(result, tmp_path)
        assert loaded.postmortem.instances == result.postmortem.instances

    def test_catalog_answers_like_the_module(self, benchmark_name, tmp_path):
        result = profile_benchmark(benchmark_name)
        _, loaded = roundtrip(result, tmp_path)
        for f in result.module.functions.values():
            got = loaded.module.get_function(f.name)
            assert got is not None
            assert got.source_name == f.source_name
            assert got.outlined_from == f.outlined_from
            assert got.is_artificial == f.is_artificial
        assert loaded.module.get_function("no-such-function") is None


class TestTolerantRoundTrip:
    """Degraded runs: provenance, fault stats, and recovered paths all
    survive the disk trip and the views still match byte for byte."""

    @pytest.mark.parametrize("view", VIEWS)
    def test_view_byte_identical(self, benchmark_name, view, tmp_path):
        result = profile_benchmark(benchmark_name, faults=FAULT_SPEC)
        _, loaded = roundtrip(result, tmp_path)
        assert render_stage(loaded, view) == render_stage(result, view)

    def test_degradation_provenance_survives(self, benchmark_name, tmp_path):
        result = profile_benchmark(benchmark_name, faults=FAULT_SPEC)
        snapshot, loaded = roundtrip(result, tmp_path)
        assert (
            loaded.postmortem.unknown_by_reason()
            == snapshot.postmortem.unknown_by_reason()
        )
        assert (
            loaded.postmortem.quarantine_by_reason()
            == snapshot.postmortem.quarantine_by_reason()
        )
        assert loaded.fault_stats == snapshot.fault_stats
        assert loaded.fault_stats["examined"] > 0

    def test_quarantine_rate_matches_live(self, benchmark_name, tmp_path):
        result = profile_benchmark(benchmark_name, faults=FAULT_SPEC)
        _, loaded = roundtrip(result, tmp_path)
        assert loaded.quarantine_rate == result.quarantine_rate


class TestGolden:
    """The data-centric view of each benchmark is pinned to a golden
    file, and the artifact path must reproduce it exactly — catching
    both profile regressions and encode/decode drift."""

    def golden_path(self, name: str) -> Path:
        return GOLDEN_DIR / f"{name}_data_view.txt"

    def test_live_render_matches_golden(self, benchmark_name):
        result = profile_benchmark(benchmark_name)
        expected = self.golden_path(benchmark_name).read_text()
        assert render_stage(result, "data") + "\n" == expected

    def test_artifact_render_matches_golden(self, benchmark_name, tmp_path):
        result = profile_benchmark(benchmark_name)
        _, loaded = roundtrip(result, tmp_path)
        expected = self.golden_path(benchmark_name).read_text()
        assert render_stage(loaded, "data") + "\n" == expected
