"""Blame-shift tables between two profile artifacts (paper Table VIII).

The paper's optimization workflow is: profile the original, apply a
hand-optimization, profile again, and read how the blame moved — the
hourglass family dropping from 25.0 % to 13.2 % under P1 is the signal
that the fix landed.  ``repro diff a.cbp b.cbp`` produces exactly that
table from two stored artifacts, so the comparison never re-runs either
program.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blame.report import BlameReport
from ..views.tables import pct, render_table
from .model import ProfileSnapshot


@dataclass(frozen=True)
class DiffRow:
    """One variable's blame in both profiles."""

    name: str
    context: str
    type_str: str
    blame_a: float
    blame_b: float
    samples_a: int
    samples_b: int

    @property
    def delta(self) -> float:
        return self.blame_b - self.blame_a


def diff_reports(
    a: BlameReport, b: BlameReport, min_delta: float = 0.0
) -> list[DiffRow]:
    """Joins two reports on (context, variable); rows sorted by the
    magnitude of the blame shift (largest movement first)."""
    rows_a = {(r.context, r.name): r for r in a.rows}
    rows_b = {(r.context, r.name): r for r in b.rows}
    out: list[DiffRow] = []
    for key in rows_a.keys() | rows_b.keys():
        ra, rb = rows_a.get(key), rows_b.get(key)
        row = DiffRow(
            name=key[1],
            context=key[0],
            type_str=(ra or rb).type_str,
            blame_a=ra.blame if ra else 0.0,
            blame_b=rb.blame if rb else 0.0,
            samples_a=ra.samples if ra else 0,
            samples_b=rb.samples if rb else 0,
        )
        if abs(row.delta) < min_delta:
            continue
        out.append(row)
    out.sort(key=lambda r: (-abs(r.delta), r.context, r.name))
    return out


def diff_snapshots(
    a: ProfileSnapshot, b: ProfileSnapshot, min_delta: float = 0.0
) -> list[DiffRow]:
    return diff_reports(a.report, b.report, min_delta=min_delta)


def render_blame_diff(
    rows: list[DiffRow],
    label_a: str = "A",
    label_b: str = "B",
    top: int | None = None,
) -> str:
    """Table VIII-shaped rendering of a blame shift."""
    table_rows = []
    for r in rows[: top or len(rows)]:
        sign = "+" if r.delta >= 0 else "-"
        table_rows.append(
            [
                r.name,
                r.context,
                pct(r.blame_a),
                pct(r.blame_b),
                f"{sign}{100.0 * abs(r.delta):.1f}pp",
            ]
        )
    return render_table(
        ["Variable", "Context", label_a, label_b, "Shift"],
        table_rows,
        title=f"Blame shift: {label_a} -> {label_b}",
        aligns=["l", "l", "r", "r", "r"],
    )
