"""FaultInjector: per-class behavior, determinism, purity."""

import sys, os

from repro.resilience.faults import FaultPlan
from repro.resilience.inject import (
    CORRUPT_IID,
    FaultInjector,
    is_stripped_frame,
)
from repro.sampling.monitor import Monitor
from repro.sampling.pmu import PMUConfig
from repro.sampling.records import RawSample

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src, profile_src

PAR = """
var A: [0..99] real;
proc kernel() {
  forall i in 0..99 { A[i] = sqrt(i * 1.0) + i * 0.25; }
}
proc main() { kernel(); }
"""


def _samples(n=200, depth=4):
    out = []
    for i in range(n):
        stack = tuple((f"f{d}", 100 * d + i % 7) for d in range(depth))
        out.append(
            RawSample(
                index=i,
                thread_id=i % 4,
                task_id=i % 3,
                stack=stack,
                leaf_iid=stack[0][1],
                spawn_tag=i % 5 if i % 2 else None,
                pre_spawn_stack=(("main", 7),) if i % 2 else None,
            )
        )
    return out


class TestStreamFaults:
    def test_clean_plan_copies_stream_untouched(self):
        samples = _samples()
        inj = FaultInjector(FaultPlan())
        out = inj.degrade_samples(samples)
        assert out == samples and out is not samples

    def test_original_stream_never_mutated(self):
        samples = _samples()
        snapshot = list(samples)
        FaultInjector(FaultPlan(seed=1, drop_rate=0.5, corrupt_rate=0.5,
                                truncate_rate=0.5, tag_loss_rate=0.5)
                      ).degrade_samples(samples)
        assert samples == snapshot

    def test_deterministic_for_same_plan(self):
        samples = _samples()
        a = FaultInjector(FaultPlan(seed=5, drop_rate=0.3)).degrade_samples(samples)
        b = FaultInjector(FaultPlan(seed=5, drop_rate=0.3)).degrade_samples(samples)
        assert a == b
        c = FaultInjector(FaultPlan(seed=6, drop_rate=0.3)).degrade_samples(samples)
        assert a != c

    def test_drop_removes_samples(self):
        samples = _samples()
        inj = FaultInjector(FaultPlan(seed=2, drop_rate=0.4))
        out = inj.degrade_samples(samples)
        assert len(out) < len(samples)
        assert inj.stats.dropped == len(samples) - len(out)

    def test_corrupt_damages_payload(self):
        samples = _samples()
        inj = FaultInjector(FaultPlan(seed=2, corrupt_rate=0.5))
        out = inj.degrade_samples(samples)
        assert len(out) == len(samples)
        bad_leaf = [s for s in out if s.leaf_iid == CORRUPT_IID]
        bad_frame = [
            s for s in out if any(iid >= 10**9 for _, iid in s.stack)
        ]
        assert bad_leaf and bad_frame
        assert inj.stats.corrupted == len(bad_leaf) + len(bad_frame)

    def test_truncate_cuts_the_full_walk(self):
        samples = _samples(depth=4)
        inj = FaultInjector(FaultPlan(seed=2, truncate_rate=1.0, truncate_depth=2))
        out = inj.degrade_samples(samples)
        assert inj.stats.truncated == len(samples)
        for s in out:
            pre = len(s.pre_spawn_stack) if s.pre_spawn_stack else 0
            assert len(s.stack) + pre <= 2
        # Depth below the post-spawn stack loses the continuation but
        # keeps the tasking-layer tag (it is not part of the walk).
        cut = [s for s in out if s.spawn_tag is not None]
        assert cut and all(s.pre_spawn_stack is None for s in cut)

    def test_truncate_spares_shallow_walks(self):
        shallow = [
            RawSample(0, 0, 0, (("f", 1),), 1, None, None),
        ]
        inj = FaultInjector(FaultPlan(seed=2, truncate_rate=1.0, truncate_depth=2))
        assert inj.degrade_samples(shallow) == shallow
        assert inj.stats.truncated == 0

    def test_tagloss_clears_tag_and_pre_spawn(self):
        samples = _samples()
        inj = FaultInjector(FaultPlan(seed=2, tag_loss_rate=1.0))
        out = inj.degrade_samples(samples)
        assert all(s.spawn_tag is None and s.pre_spawn_stack is None for s in out)
        assert inj.stats.tags_lost == sum(
            1 for s in samples if s.spawn_tag is not None
        )

    def test_idle_samples_pass_through(self):
        idle = RawSample(0, 0, -1, (("__sched_yield", -1),), -1, None, None,
                         is_idle=True)
        inj = FaultInjector(FaultPlan(seed=2, drop_rate=1.0))
        assert inj.degrade_samples([idle]) == [idle]

    def test_idle_samples_do_not_shift_later_decisions(self):
        # The fate of sample k must not depend on how many idle samples
        # preceded it (keeps per-class sweeps comparable).
        busy = _samples(50)
        idle = [
            RawSample(900 + i, 0, -1, (("__sched_yield", -1),), -1, None,
                      None, is_idle=True)
            for i in range(10)
        ]
        plan = FaultPlan(seed=3, drop_rate=0.5)
        kept_a = [
            s.index for s in FaultInjector(plan).degrade_samples(busy)
        ]
        kept_b = [
            s.index
            for s in FaultInjector(plan).degrade_samples(idle + busy)
            if not s.is_idle
        ]
        assert kept_a == kept_b


class TestStrip:
    def test_strip_rewrites_frames_to_addresses(self):
        module = compile_src(PAR)
        inj = FaultInjector(FaultPlan(seed=1, strip_rate=0.5), module=module)
        assert inj.stripped_functions
        assert "main" not in inj.stripped_functions
        stack = tuple(
            (name, 10 + k) for k, name in enumerate(inj.stripped_functions)
        )
        out = inj.degrade_samples(
            [RawSample(0, 0, 0, stack, 10, None, None)]
        )
        assert all(is_stripped_frame(f) for f, _ in out[0].stack)
        # iids survive: that's what symbol-table re-identification uses.
        assert [iid for _, iid in out[0].stack] == [iid for _, iid in stack]

    def test_strip_without_module_is_noop(self):
        inj = FaultInjector(FaultPlan(seed=1, strip_rate=0.5))
        samples = _samples()
        assert inj.degrade_samples(samples) == samples


class TestFaultyMonitor:
    def test_ingest_time_faults_hit_quarantine(self):
        module = compile_src(PAR)
        inj = FaultInjector(FaultPlan(seed=4, corrupt_rate=1.0), module=module)
        monitor = inj.wrap_monitor(Monitor(PMUConfig(threshold=211)))

        class _T:
            thread_id = 0
            clock = 0.0

        class _Task:
            task_id = 1
            is_main = True
            spawn = None

        for i in range(40):
            monitor.take_sample(_T(), _Task(), [("kernel", 5)], 5)
        # Half the corruptions produce a negative leaf iid → rejected at
        # ingest; the rest carry a garbage frame address but land.
        assert monitor.n_quarantined > 0
        assert monitor.quarantine_by_reason().get("negative-leaf-iid")
        assert monitor.n_samples + monitor.n_quarantined == 40

    def test_profiler_end_to_end_with_faults(self):
        res = profile_src(PAR, threshold=211)
        clean_total = res.report.stats.total_raw_samples
        assert clean_total > 0 and res.fault_stats is None
