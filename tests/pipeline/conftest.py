"""Shared fixtures for the sharded-pipeline tests.

One collected (and optionally degraded) sample stream per
configuration, reused across tests: collection is deterministic
(simulated clock, seeded degradation; task/spawn ids are per-scheduler,
so repeated runs in one process produce identical streams) and reusing
the same stream keeps the suite fast.
"""

from __future__ import annotations

from repro.pipeline import analyze_stage, collect_stage, compile_stage

#: Same degradation plan the artifact tests exercise every channel with.
FAULT_SPEC = "drop=0.05,truncate=0.1:3,tagloss=0.1,strip=0.1,seed=42"

NUM_THREADS = 4
THRESHOLD = 4999


def benchmark_setup(name: str) -> tuple[str, str, dict]:
    """(source, filename, config) for one benchmark."""
    if name == "minimd":
        from repro.bench.programs import minimd

        return (
            minimd.build_source(optimized=False),
            "minimd.chpl",
            minimd.config_for(num_bins=6, per_bin=4, steps=3),
        )
    if name == "clomp":
        from repro.bench.programs import clomp

        return (
            clomp.build_source(optimized=False),
            "clomp.chpl",
            clomp.config_for(num_parts=4, zones_per_part=6, timesteps=2),
        )
    if name == "lulesh":
        from repro.bench.programs import lulesh

        return (
            lulesh.build_source(),
            "lulesh.chpl",
            lulesh.config_for(edge_elems=4, max_steps=2),
        )
    raise ValueError(name)


_CACHE: dict = {}


def collected(name: str = "minimd", faults: str | None = None):
    """(module, static_info, samples, wall_seconds) — collected once per
    configuration; ``faults`` degrades the stream *before* any sharding,
    exactly as the parallel driver does."""
    key = (name, faults)
    if key not in _CACHE:
        source, filename, config = benchmark_setup(name)
        module = compile_stage(source, filename)
        static = analyze_stage(module)
        coll = collect_stage(
            module,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
        )
        samples = coll.monitor.samples
        if faults:
            from repro.resilience.faults import FaultPlan
            from repro.resilience.inject import FaultInjector

            injector = FaultInjector(FaultPlan.parse(faults), module=module)
            samples = injector.degrade_samples(samples)
        _CACHE[key] = (module, static, samples, coll.run_result.wall_seconds)
    return _CACHE[key]
