"""Adaptive collection: profile in rounds, stop when the ranking settles.

The blame report is a sample estimate, and for most runs the variable
ranking is statistically settled long before the workload finishes.
This module adds the control loop the ROADMAP calls "the biggest
wall-clock lever for serving profile requests at interactive latency":

* the :class:`Monitor` delivers samples in **rounds** (its sink-mode
  batches, ``round_samples`` per round);
* each round is fed through the (optionally fault-degraded) stream into
  the streaming :class:`~repro.blame.postmortem.PostmortemConsumer`,
  and only the **newly consolidated instances** are attributed — the
  running total is combined with
  :func:`~repro.blame.attribution.merge_attributions`, so a checkpoint
  costs the delta, not a re-pass (the content-hash caches make the
  per-instance work itself cache-hot);
* the **stopping rule** then checks the interim report: every top-N
  blame share's confidence interval (Wilson by default — see
  :mod:`repro.blame.confidence`) has half-width ≤ ``ci_width``, the
  top-N set matches the previous checkpoint exactly, and Kendall-τ
  against it is ≥ ``tau_min`` — for ``stability_window`` *consecutive*
  checkpoints.  A **half-stream guard** additionally requires the
  current ranking to agree with the checkpoint taken at half the
  current sample count: consecutive checkpoints of a cumulative
  estimate always look locally stable, so without the guard a
  phase-structured program (LULESH's timestep loop) could stop inside
  its first phase — the half-stream comparison only passes once the
  ranking has survived a doubling of the evidence;
* when the rule fires, :exc:`StopSampling` is raised out of the sink,
  unwinds the interpreter (both engines deliver PMU overflows outside
  their error-wrapping regions, so the exception propagates cleanly),
  and the driver assembles a partial run result — the samples after the
  stopping point are simply never generated.

Degraded telemetry (quarantined samples, unresolved repair candidates)
widens the intervals and therefore *delays* stopping; it can never
accelerate it.  The whole decision trail — one record per round — is
kept as an :class:`AdaptiveTrail`, surfaced in the views and persisted
as the optional ``a`` record of the ``.cbp`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..blame.attribution import (
    AttributionResult,
    BlameAttributor,
    merge_attributions,
)
from ..blame.confidence import (
    METHODS,
    blame_intervals,
    max_half_width,
    rank_agreement,
)
from ..blame.report import BlameReport, RunStats, build_rows

#: Stop reasons recorded in the trail.
REASON_SETTLED = "ranking-settled"
REASON_EXHAUSTED = "stream-exhausted"


class StopSampling(Exception):
    """Raised out of the monitor's sink to halt collection early.

    Deliberately *not* a :class:`~repro.runtime.values.RuntimeError_`:
    the interpreter wraps those into program-level execution errors,
    whereas this is a measurement decision that must unwind past the
    event loop untouched.
    """

    def __init__(self, reason: str, rounds: int) -> None:
        super().__init__(f"adaptive stop after round {rounds}: {reason}")
        self.reason = reason
        self.rounds = rounds


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the stopping rule (CLI flags map 1:1 onto these)."""

    confidence: float = 0.95
    #: Max CI half-width on each top-N blame share before it counts as
    #: settled.
    ci_width: float = 0.02
    #: Consecutive settled checkpoints required before stopping.
    stability_window: int = 3
    #: Rows whose intervals and ranking the rule watches.
    top_n: int = 5
    #: Samples per round (the monitor's sink batch size).
    round_samples: int = 256
    #: Rounds that must elapse before the rule may fire at all.
    min_rounds: int = 2
    #: Kendall-τ floor between consecutive checkpoints.
    tau_min: float = 0.9
    #: Interval method: "wilson" (deterministic) or "bootstrap" (seeded).
    method: str = "wilson"
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1) (got {self.confidence})"
            )
        if not 0.0 < self.ci_width < 1.0:
            raise ValueError(
                f"ci_width must be in (0, 1) (got {self.ci_width})"
            )
        if self.stability_window < 1:
            raise ValueError("stability_window must be >= 1")
        if self.round_samples < 1:
            raise ValueError("round_samples must be >= 1")
        if self.top_n < 1:
            raise ValueError("top_n must be >= 1")
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r} (want one of {METHODS})"
            )


@dataclass(frozen=True)
class RoundRecord:
    """One checkpoint of the decision trail."""

    round: int  # 1-based
    n_raw: int  # raw samples fed so far (cumulative)
    n_user: int  # consolidated user instances so far
    max_half_width: float  # widest top-N CI half-width at this checkpoint
    top_overlap: float  # top-N overlap vs the previous checkpoint
    tau: float  # Kendall-τ vs the previous checkpoint
    half_overlap: float  # top-N overlap vs the half-stream checkpoint
    half_tau: float  # Kendall-τ vs the half-stream checkpoint
    degraded: int  # quarantined + unresolved candidates right now
    stable: bool  # did this checkpoint satisfy the rule?
    #: Compact top-N intervals: [key, share, lo, hi] per row.
    intervals: tuple = ()

    def as_dict(self) -> dict:
        return {
            "round": self.round,
            "n_raw": self.n_raw,
            "n_user": self.n_user,
            "max_half_width": round(self.max_half_width, 4),
            "top_overlap": round(self.top_overlap, 4),
            "tau": round(self.tau, 4),
            "half_overlap": round(self.half_overlap, 4),
            "half_tau": round(self.half_tau, 4),
            "degraded": self.degraded,
            "stable": self.stable,
            "intervals": [list(iv) for iv in self.intervals],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RoundRecord":
        return cls(
            round=d["round"],
            n_raw=d["n_raw"],
            n_user=d["n_user"],
            max_half_width=d["max_half_width"],
            top_overlap=d["top_overlap"],
            tau=d["tau"],
            half_overlap=d.get("half_overlap", 0.0),
            half_tau=d.get("half_tau", 0.0),
            degraded=d["degraded"],
            stable=d["stable"],
            intervals=tuple(tuple(iv) for iv in d.get("intervals", [])),
        )


@dataclass
class AdaptiveTrail:
    """The full decision trail of one adaptive run."""

    rounds: list[RoundRecord] = field(default_factory=list)
    stopped_early: bool = False
    stop_reason: str = REASON_EXHAUSTED
    #: Raw samples actually collected (== the monitor's accepted count).
    samples_collected: int = 0
    confidence: float = 0.95
    ci_width: float = 0.02
    stability_window: int = 3
    top_n: int = 5
    round_samples: int = 256
    method: str = "wilson"
    #: Samples the full run would have taken, when a baseline is known
    #: (benchmarks fill this in; live runs cannot know it).
    samples_total: int | None = None

    @property
    def samples_saved(self) -> int | None:
        if self.samples_total is None:
            return None
        return max(0, self.samples_total - self.samples_collected)

    def as_dict(self) -> dict:
        """JSON-stable form — this exact dict is the artifact's ``a``
        record payload, and what the views render (live and replayed
        paths both normalize to it, keeping renders byte-identical)."""
        out = {
            "rounds": [r.as_dict() for r in self.rounds],
            "stopped_early": self.stopped_early,
            "stop_reason": self.stop_reason,
            "samples_collected": self.samples_collected,
            "confidence": self.confidence,
            "ci_width": self.ci_width,
            "stability_window": self.stability_window,
            "top_n": self.top_n,
            "round_samples": self.round_samples,
            "method": self.method,
        }
        if self.samples_total is not None:
            out["samples_total"] = self.samples_total
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "AdaptiveTrail":
        return cls(
            rounds=[RoundRecord.from_dict(r) for r in d.get("rounds", [])],
            stopped_early=d.get("stopped_early", False),
            stop_reason=d.get("stop_reason", REASON_EXHAUSTED),
            samples_collected=d.get("samples_collected", 0),
            confidence=d.get("confidence", 0.95),
            ci_width=d.get("ci_width", 0.02),
            stability_window=d.get("stability_window", 3),
            top_n=d.get("top_n", 5),
            round_samples=d.get("round_samples", 256),
            method=d.get("method", "wilson"),
            samples_total=d.get("samples_total"),
        )


class AdaptiveController:
    """Round scheduler + stopping rule, packaged as a monitor sink.

    Wire-up (the profiler does this; tests can too)::

        consumer = PostmortemConsumer(module, tolerant=True, ...)
        ctl = AdaptiveController(cfg, static_info, consumer,
                                 degrade=injector.degrader(), program=...)
        monitor = Monitor(pmu, sink=ctl.sink,
                          batch_size=cfg.round_samples)
        ctl.bind_monitor(monitor)
        try:
            run_result = interp.run()
        except StopSampling:
            ...
        ctl.close()          # final (partial) round never raises
        monitor.flush()
        attribution = ctl.finish()   # == attribute(pm.instances) exactly

    Incremental-attribution invariant: ``finish()`` attributes the
    post-``finish`` recovered instances as one last delta and merges it
    with the per-round deltas; by the
    :func:`~repro.blame.attribution.merge_attributions` contract the
    merged result equals a single attribution pass over every
    consolidated instance — checked in ``tests/sampling/test_adaptive.py``.
    """

    def __init__(
        self,
        config: AdaptiveConfig,
        static_info,
        consumer,
        degrade=None,
        program: str = "",
        include_temps: bool = False,
    ) -> None:
        config.validate()
        self.config = config
        self.consumer = consumer
        self.degrade = degrade
        self.program = program
        self.include_temps = include_temps
        self.attributor = BlameAttributor(static_info)
        self.trail = AdaptiveTrail(
            stop_reason=REASON_EXHAUSTED,
            confidence=config.confidence,
            ci_width=config.ci_width,
            stability_window=config.stability_window,
            top_n=config.top_n,
            round_samples=config.round_samples,
            method=config.method,
        )
        self.monitor = None
        self._attribution: AttributionResult | None = None
        self._n_attributed = 0
        self._n_fed = 0
        self._prev_report: BlameReport | None = None
        #: (n_raw, report) per checkpoint — the half-stream guard looks
        #: up the newest checkpoint at ≤ half the current sample count.
        self._history: list[tuple[int, BlameReport]] = []
        self._streak = 0
        self._closing = False
        self._finished = False

    def bind_monitor(self, monitor) -> None:
        """Lets the stopping rule count ingest-time quarantine (which
        happens inside the monitor, before the sink sees anything)."""
        self.monitor = monitor

    # -- sink protocol ---------------------------------------------------------

    def sink(self, batch) -> None:
        """One round: feed, attribute the delta, evaluate the rule."""
        self._round(batch)

    def close(self) -> None:
        """Enters closing mode: the final partial round (delivered by
        ``monitor.flush()`` after a natural run completion) is still
        recorded, but the rule never raises again."""
        self._closing = True

    # -- the round -------------------------------------------------------------

    def _degraded_count(self) -> int:
        """Samples whose blame is currently unknown: quarantined at
        ingest or post-mortem, plus repair candidates still held back."""
        n = self.consumer.n_quarantined + self.consumer.pending_candidates
        if self.monitor is not None:
            n += self.monitor.n_quarantined
        return n

    def _attribute_delta(self) -> None:
        new = self.consumer.instances_since(self._n_attributed)
        self._n_attributed = self.consumer.n_consolidated
        if not new and self._attribution is not None:
            return
        delta = self.attributor.attribute(new)
        if self._attribution is None:
            self._attribution = delta
        else:
            self._attribution = merge_attributions([self._attribution, delta])

    def _interim_report(self) -> BlameReport:
        """A checkpoint report: real rows, placeholder run stats (only
        the ranking and sample counts feed the rule)."""
        attr = self._attribution
        assert attr is not None
        return BlameReport(
            program=self.program,
            rows=build_rows(
                attr, min_blame=0.0, include_temps=self.include_temps,
                unknown_samples=0,
            ),
            stats=RunStats(
                total_raw_samples=self._n_fed,
                user_samples=attr.total_samples,
                runtime_samples=0,
                wall_seconds=0.0,
            ),
        )

    def _round(self, batch) -> None:
        cfg = self.config
        self._n_fed += len(batch)
        chunk = self.degrade(batch) if self.degrade is not None else batch
        self.consumer.feed(chunk)
        self._attribute_delta()
        report = self._interim_report()
        degraded = self._degraded_count()
        intervals = blame_intervals(
            report,
            total=self._attribution.total_samples,
            confidence=cfg.confidence,
            top_n=cfg.top_n,
            degraded=degraded,
            method=cfg.method,
            seed=cfg.seed + len(self.trail.rounds),
        )
        hw = max_half_width(intervals)
        if self._prev_report is not None:
            overlap, tau = rank_agreement(
                self._prev_report, report, top_n=cfg.top_n
            )
        else:
            overlap, tau = 0.0, 0.0
        # Half-stream guard: agreement with the checkpoint at ≤ half
        # the current evidence (0.0 until one exists — can't stop).
        half_report = None
        for n_at, rep in reversed(self._history):
            if n_at * 2 <= self._n_fed:
                half_report = rep
                break
        if half_report is not None:
            half_overlap, half_tau = rank_agreement(
                half_report, report, top_n=cfg.top_n
            )
        else:
            half_overlap, half_tau = 0.0, 0.0
        stable = (
            self._prev_report is not None
            and bool(report.rows)
            and overlap == 1.0
            and tau >= cfg.tau_min
            and half_overlap == 1.0
            and half_tau >= cfg.tau_min
            and hw <= cfg.ci_width
        )
        self._streak = self._streak + 1 if stable else 0
        self._prev_report = report
        self._history.append((self._n_fed, report))
        n_round = len(self.trail.rounds) + 1
        self.trail.rounds.append(
            RoundRecord(
                round=n_round,
                n_raw=self._n_fed,
                n_user=self._n_attributed,
                max_half_width=hw,
                top_overlap=overlap,
                tau=tau,
                half_overlap=half_overlap,
                half_tau=half_tau,
                degraded=degraded,
                stable=stable,
                intervals=tuple(tuple(iv.as_row()) for iv in intervals),
            )
        )
        if (
            not self._closing
            and n_round >= cfg.min_rounds
            and self._streak >= cfg.stability_window
        ):
            self.trail.stopped_early = True
            self.trail.stop_reason = REASON_SETTLED
            raise StopSampling(REASON_SETTLED, n_round)

    # -- completion ------------------------------------------------------------

    def finish(self):
        """Finalizes post-mortem + attribution; returns ``(pm,
        attribution)``.

        The consumer's ``finish()`` resolves held-back candidates, which
        may *append* recovered instances — those are attributed as one
        final delta and merged, so the result is exactly what one
        attribution pass over ``pm.instances`` would produce.
        """
        assert not self._finished, "finish() called twice"
        self._finished = True
        pm = self.consumer.finish()
        self._attribute_delta()
        self.trail.samples_collected = (
            self.monitor.n_accepted if self.monitor is not None else self._n_fed
        )
        return pm, self._attribution
