"""Backward-slice / BlameSet tests — including the exact reproduction of
the paper's Fig. 1 / Table I example."""

import pytest

from repro.bench.programs import example_fig1
from repro.blame.dataflow import DataFlow, VarKey
from repro.blame.slices import compute_blame_sets, paths_may_alias
from repro.blame.static_info import ModuleBlameInfo

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src


class TestPaperTableI:
    """Paper Fig. 1 / Table I: the variable→blame-lines map."""

    @pytest.fixture(scope="class")
    def vlm(self):
        m = compile_src(example_fig1.build_source())
        info = ModuleBlameInfo(m)
        full = info.variable_lines_map("main")
        # Restrict to the example's own lines (16-20), like the paper.
        return {
            k: {ln for ln in v if 16 <= ln <= 20} for k, v in full.items()
        }

    def test_b_matches_paper_exactly(self, vlm):
        assert vlm["b"] == example_fig1.PAPER_TABLE_I["b"]

    def test_c_matches_paper_exactly(self, vlm):
        assert vlm["c"] == example_fig1.PAPER_TABLE_I["c"]

    def test_a_matches_formal_definition(self, vlm):
        # The formal BlameSet definition puts line 17 in a's set (the
        # write a=b+1 reads b) — see example_fig1's module docstring.
        assert vlm["a"] == example_fig1.FORMAL_TABLE_I["a"]

    def test_a_superset_of_printed_table(self, vlm):
        assert vlm["a"] >= example_fig1.PAPER_TABLE_I["a"]

    def test_blame_percentages(self):
        # Under the formal sets: a=3/4, b=1/4, c=4/4 for samples on
        # lines 17..20 (the paper's walk-through gives 50/25/100 with
        # its printed table).
        fr = example_fig1.blamed_fractions(
            example_fig1.PAPER_SAMPLE_LINES, example_fig1.FORMAL_TABLE_I
        )
        assert fr == {"a": 0.75, "b": 0.25, "c": 1.0}
        fr_paper = example_fig1.blamed_fractions(
            example_fig1.PAPER_SAMPLE_LINES, example_fig1.PAPER_TABLE_I
        )
        assert fr_paper == {"a": 0.5, "b": 0.25, "c": 1.0}


class TestSliceMechanics:
    def bs(self, src, fn="main"):
        m = compile_src(src)
        df = DataFlow(m.functions[fn], m)
        return m, df, compute_blame_sets(m.functions[fn], df)

    def name_sets(self, m, df, bsets, fn="main"):
        """variable name → set of source lines in its blame set."""
        line_of = {i.iid: i.loc.line for i in m.functions[fn].instructions()}
        out = {}
        for (key, path), iids in bsets.by_var.items():
            if path:
                continue
            meta = df.var_meta.get(key)
            if meta is None or meta.is_temp:
                continue
            out.setdefault(meta.name, set()).update(
                line_of[i] for i in iids if i in line_of
            )
        return out

    def test_explicit_transfer(self):
        src = "proc main() {\nvar a = 1;\nvar b = a + 1;\n}"
        m, df, bsets = self.bs(src)
        ns = self.name_sets(m, df, bsets)
        assert 2 in ns["b"]  # a's write feeds b
        assert 3 not in ns["a"]  # b's write does not blame a

    def test_implicit_control_transfer(self):
        src = (
            "proc main() {\nvar flag = true;\nvar x = 0;\n"
            "if flag {\nx = 1;\n}\n}"
        )
        m, df, bsets = self.bs(src)
        ns = self.name_sets(m, df, bsets)
        # the condition (line 4) controls x's write → in x's set
        assert 4 in ns["x"]

    def test_loop_control_in_body_vars_blame(self):
        src = (
            "proc main() {\nvar s = 0;\nfor i in 1..3 {\ns += i;\n}\n}"
        )
        m, df, bsets = self.bs(src)
        ns = self.name_sets(m, df, bsets)
        # the loop machinery (line 3) is in s's blame set
        assert 3 in ns["s"]

    def test_flow_insensitive_both_writes(self):
        # c reads a once, but both of a's writes join c's blame set.
        src = (
            "proc main() {\nvar a = 1;\na = 2;\nvar c = a;\n}"
        )
        m, df, bsets = self.bs(src)
        ns = self.name_sets(m, df, bsets)
        assert {2, 3} <= ns["c"]

    def test_by_iid_inversion_consistent(self):
        src = "proc main() { var a = 1; var b = a + 2; }"
        m, df, bsets = self.bs(src)
        for root, iids in bsets.by_var.items():
            for iid in iids:
                assert root in bsets.by_iid[iid]

    def test_shallow_descriptor_write_contributes_only_itself(self):
        src = """
var D: domain(1) = {0..9};
var A: [D] real;
proc main() {
  var x = 1.0;
  var y = x + 1.0;
  var S = A[D];
}
"""
        m, df, bsets = self.bs(src)
        from repro.ir import instructions as I

        slice_instr = next(
            i for i in m.functions["main"].instructions()
            if isinstance(i, I.ArraySlice)
        )
        a_set = bsets.by_var[(VarKey("global", "A"), ())]
        # the slice write is in A's set...
        assert slice_instr.iid in a_set
        # ...but the unrelated x/y arithmetic is not dragged in
        y_stores = [
            i.iid for i in m.functions["main"].instructions()
            if isinstance(i, I.Store)
        ]
        # A's set contains no store instructions except via makearray init
        assert not (a_set & set(y_stores[:2]))


class TestImplicitIterableBlame:
    def test_loop_body_blames_iterated_domain(self):
        src = """
var D: domain(1) = {0..9};
var A: [D] real;
proc main() {
  for i in D {
    A[i] = i * 2.0;
  }
}
"""
        m = compile_src(src)
        df = DataFlow(m.functions["main"], m)
        bsets = compute_blame_sets(m.functions["main"], df)
        d_set = bsets.by_var.get((VarKey("global", "D"), ()), frozenset())
        from repro.ir import instructions as I

        body_stores = [
            i.iid for i in m.functions["main"].instructions()
            if isinstance(i, I.Store) and i.loc.line == 6
        ]
        assert body_stores
        assert set(body_stores) <= d_set

    def test_innermost_loop_only(self):
        src = """
var D: domain(1) = {0..3};
var A: [0..3] real;
proc main() {
  for i in D {
    for a in A {
      a = 1.0;
    }
  }
}
"""
        m = compile_src(src)
        df = DataFlow(m.functions["main"], m)
        bsets = compute_blame_sets(m.functions["main"], df)
        from repro.ir import instructions as I

        inner_stores = [
            i.iid for i in m.functions["main"].instructions()
            if isinstance(i, I.Store) and i.loc.line == 7
        ]
        a_set = bsets.by_var.get((VarKey("global", "A"), ()), frozenset())
        d_set = bsets.by_var.get((VarKey("global", "D"), ()), frozenset())
        assert set(inner_stores) <= a_set
        assert not (set(inner_stores) & d_set)


class TestPathsMayAlias:
    def test_equal_and_prefix(self):
        f = ("field", "x")
        i = ("index",)
        assert paths_may_alias((), ())
        assert paths_may_alias((f,), (f,))
        assert paths_may_alias((), (f,))  # whole-record store vs field
        assert paths_may_alias((i,), (i, f))

    def test_different_fields_do_not_alias(self):
        assert not paths_may_alias((("field", "x"),), (("field", "y"),))

    def test_index_matches_any_index(self):
        assert paths_may_alias((("index",),), (("index",),))

    def test_cfield_blocks_prefix_alias(self):
        # pointer slot vs pointee field
        assert not paths_may_alias((), (("cfield", "v"),))
        # but equal cfield paths alias
        assert paths_may_alias((("cfield", "v"),), (("cfield", "v"),))

    def test_index_vs_field_mismatch(self):
        assert not paths_may_alias((("index",),), (("field", "x"),))
