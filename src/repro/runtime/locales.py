"""Locales — Chapel's abstraction of target-architecture units.

The paper works on a single locale ("In this work, we focus on the
single locale", §II.B); multi-locale tracking through GASNet is its
future work.  We model the same: one :class:`Locale` with a configurable
task-parallelism width, but keep the type plural-ready so the blame
aggregation layer (`repro.blame.aggregate`) can merge per-locale results
the way the paper's step 4 describes.

For the communication advisor this module additionally provides the
*simulated block-distribution* ground truth the static locality
analysis (:mod:`repro.analysis.locality`) is validated against:

* :func:`block_owner` — the canonical block mapping.  Linear position
  ``pos`` of a ``size``-element space lives on locale
  ``pos * L // size``: contiguous, balanced blocks, the default Chapel
  ``Block`` layout both the paper's setting and Rolinger et al.'s
  optimization work assume.
* :class:`LocaleObserver` — an interpreter that runs the program and
  records, for every ``elemaddr`` instruction, each (executing locale,
  owning locale) pair it actually produced.  The executing locale is
  the block-owner of the task's current parallel-iteration position in
  the spawned-over space (serial code and ``main`` run on locale 0);
  the owning locale is the block-owner of the accessed element's flat
  position within its root array.

The exactness gate in the test suite is: every access the static
analysis labels LOCAL must only ever observe ``exec == owner``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .interpreter import Interpreter
from .values import ArrayValue, DomainChunk


@dataclass(frozen=True)
class Locale:
    """One compute node."""

    locale_id: int
    max_task_par: int = 12  # the paper's 12-core SMP Xeon

    @property
    def name(self) -> str:
        return f"LOCALE{self.locale_id}"


def single_locale(max_task_par: int = 12) -> Locale:
    return Locale(0, max_task_par)


def block_owner(size: int, pos: int, num_locales: int) -> int:
    """Owning locale of linear position ``pos`` in a block-distributed
    space of ``size`` elements across ``num_locales`` locales."""
    if size <= 0 or num_locales <= 1:
        return 0
    p = min(max(pos, 0), size - 1)
    return p * num_locales // size


class LocaleObserver(Interpreter):
    """Interpreter recording per-``elemaddr`` locale pairs.

    ``observed`` maps elemaddr iid → set of (executing locale, owning
    locale) pairs.  Built on the generic interpreter engine (this
    class overrides its handlers); the observation changes no program
    behavior, only bookkeeping.
    """

    def __init__(self, *args, num_locales: int = 4, **kwargs) -> None:
        # The fast engine compiles per-block closures that bypass the
        # dispatch table, so subclass hooks would never fire: force the
        # generic (reference) loop.  Both engines are bit-identical.
        kwargs["engine"] = "generic"
        super().__init__(*args, **kwargs)
        self.num_locales = num_locales
        self.observed: dict[int, set[tuple[int, int]]] = {}
        #: id(IterState) → spawned-over space, for chunk-derived states.
        self._chunk_spaces: dict[int, object] = {}
        #: id(task) → (space, current linear position) of the task's
        #: parallel iteration (chunk positions are absolute).
        self._task_pos: dict[int, tuple[object, int]] = {}

    # -- hooks -------------------------------------------------------------

    def _ex_iter_init(self, thread, task, frame, instr):
        it = self._val(frame, instr.iterable)
        cost = super()._ex_iter_init(thread, task, frame, instr)
        if isinstance(it, DomainChunk):
            state = frame.regs[instr.result.rid]
            self._chunk_spaces[id(state)] = state.payload
        return cost

    def _ex_iter_value(self, thread, task, frame, instr):
        cost = super()._ex_iter_value(thread, task, frame, instr)
        state = self._val(frame, instr.state)
        space = self._chunk_spaces.get(id(state))
        if space is not None:
            self._task_pos[id(task)] = (space, state.pos)
        return cost

    def _ex_elem_addr(self, thread, task, frame, instr):
        cost = super()._ex_elem_addr(thread, task, frame, instr)
        arr = self._val(frame, instr.base)
        assert isinstance(arr, ArrayValue)
        _data, flat = frame.regs[instr.result.rid]
        cur = self._task_pos.get(id(task))
        if cur is None:
            exec_locale = 0  # serial code / main
        else:
            space, pos = cur
            exec_locale = block_owner(space.size, pos, self.num_locales)
        owner = block_owner(arr.root.size, flat, self.num_locales)
        self.observed.setdefault(instr.iid, set()).add((exec_locale, owner))
        return cost
