"""Extension experiment — skid and skid compensation.

The paper: "Skid is an important factor that most sampling based
profilers need to take into account... We plan to add a skid
compensation feature in the future."  This bench implements that
future work and quantifies it: MiniMD's top blame rows under precise
sampling, skidded sampling (the IP lands k instructions late), and
skidded sampling with PEBS-style compensation.

Expected shape: blame degrades monotonically with skid (samples cross
statement boundaries and bleed into neighboring variables' blame
sets); compensation restores the precise profile exactly.
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.bench.programs import minimd
from repro.compiler.lower import compile_source
from repro.tooling.profiler import Profiler
from repro.views.tables import render_table

WATCH = ["Bins", "Pos", "RealPos", "Count"]


def measure():
    module = compile_source(
        minimd.build_source(optimized=False), "minimd.chpl"
    )
    out = {}
    for tag, skid, comp in [
        ("precise", 0, False),
        ("skid=4", 4, False),
        ("skid=16", 16, False),
        ("skid=16+comp", 16, True),
    ]:
        res = Profiler(
            module,
            config=minimd.DEFAULT_CONFIG,
            num_threads=harness.NUM_THREADS,
            threshold=harness.PROFILE_THRESHOLD,
            skid=skid,
            skid_compensation=comp,
        ).profile()
        out[tag] = {name: res.report.blame_of(name) for name in WATCH}
    return out


def test_skid_study(benchmark, record):
    data = run_once(benchmark, measure)
    precise = data["precise"]

    # Precise profile has the expected MiniMD shape.
    assert precise["Bins"] > 0.5 and precise["Pos"] > 0.3

    # Skid keeps the top variables visible but perturbs the profile;
    # larger skid perturbs more (L1 distance over the watched rows).
    def dist(a):
        return sum(abs(a[n] - precise[n]) for n in WATCH)

    d4, d16 = dist(data["skid=4"]), dist(data["skid=16"])
    # Both skids perturb the profile (how much depends on where the IPs
    # land relative to statement boundaries — not monotone in general).
    assert d4 > 0.01 and d16 > 0.01
    assert data["skid=16"]["Bins"] > 0.2  # headline survives

    # Compensation recovers most of the precise attribution. (Not
    # bit-exact here: the monitor charges its stack-walk overhead at
    # delivery time, which nudges later overflow instants — see
    # tests/sampling/test_skid.py for the exact-recovery case with
    # overhead charging off.)
    dcomp = dist(data["skid=16+comp"])
    assert dcomp < d16
    assert dcomp < 0.05

    rows = [
        [tag] + [f"{100*vals[n]:.1f}%" for n in WATCH]
        for tag, vals in data.items()
    ]
    record(
        "skid_study",
        render_table(
            ["sampling", *WATCH],
            rows,
            title="Skid study (extension): MiniMD blame vs PMU skid",
        ),
    )
