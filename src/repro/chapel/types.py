"""Semantic types for the mini-Chapel frontend.

These are the types the lowering pass infers for every expression and
storage location.  The blame analysis uses them to decide which
locations are *structured* (records, arrays, tuples) and therefore get
hierarchical field blame paths (the ``->`` entries of paper Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Type:
    """Base class of all semantic types. Types are compared structurally."""

    def is_numeric(self) -> bool:
        return isinstance(self, (IntType, RealType))

    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, RealType, BoolType, StringType))


@dataclass(frozen=True)
class IntType(Type):
    """Signed integer; ``width`` mirrors Chapel's ``int(32)`` spellings."""

    width: int = 64

    def __str__(self) -> str:
        return "int" if self.width == 64 else f"int({self.width})"


@dataclass(frozen=True)
class RealType(Type):
    width: int = 64

    def __str__(self) -> str:
        return "real" if self.width == 64 else f"real({self.width})"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class StringType(Type):
    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class RangeType(Type):
    def __str__(self) -> str:
        return "range"


@dataclass(frozen=True)
class DomainType(Type):
    """Rectangular domain of the given rank (paper: ``binSpace``,
    ``DistSpace``, ``partDomain``...)."""

    rank: int = 1

    def __str__(self) -> str:
        return f"domain({self.rank})"


@dataclass(frozen=True)
class SparseDomainType(DomainType):
    """Sparse subdomain of a rectangular parent domain: holds an
    explicit (sorted) subset of the parent's indices.  Arrays declared
    over one store only the present indices — the irregular-workload
    substrate (SpMV / MTTKRP nonzero sets)."""

    def __str__(self) -> str:
        return f"sparse subdomain({self.rank})"


@dataclass(frozen=True)
class AssociativeDomainType(DomainType):
    """Associative domain keyed by ``int`` (``domain(int)``): an
    insertion-ordered set of keys.  Always rank 1 — an index is one
    key, not a coordinate tuple."""

    def __str__(self) -> str:
        return "domain(int)"


@dataclass(frozen=True)
class TupleType(Type):
    """Fixed-size tuple.  Chapel's ``3*real`` becomes a homogeneous
    3-element tuple; heterogeneous tuples keep per-element types."""

    elems: tuple[Type, ...]

    def __str__(self) -> str:
        if self.elems and all(e == self.elems[0] for e in self.elems):
            return f"{len(self.elems)}*{self.elems[0]}"
        return "(" + ", ".join(str(e) for e in self.elems) + ")"

    @property
    def size(self) -> int:
        return len(self.elems)


@dataclass(frozen=True)
class ArrayType(Type):
    """Array over a rectangular domain.  The domain's *extent* is a
    runtime value; the static type records element type and rank.

    ``domain_name`` optionally remembers the source-level domain variable
    the array was declared over (``[DistSpace] ...``) so the data-centric
    view can print types the way paper Tables II/IV do."""

    elem: Type
    rank: int = 1
    domain_name: str | None = None

    def __str__(self) -> str:
        dom = self.domain_name if self.domain_name else "?" * self.rank
        return f"[{dom}] {self.elem}"

    def __eq__(self, other: object) -> bool:
        # The declaring domain's name is presentation metadata only.
        return (
            isinstance(other, ArrayType)
            and self.elem == other.elem
            and self.rank == other.rank
        )

    def __hash__(self) -> int:
        return hash(("array", self.elem, self.rank))


@dataclass(frozen=True)
class RecordType(Type):
    """A user record/class; fields are ordered (name, type) pairs."""

    name: str
    fields: tuple[tuple[str, Type], ...] = field(default_factory=tuple)
    is_class: bool = False

    def __str__(self) -> str:
        return self.name

    def field_type(self, name: str) -> Type | None:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def field_index(self, name: str) -> int | None:
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        return None


INT = IntType()
REAL = RealType()
BOOL = BoolType()
STRING = StringType()
VOID = VoidType()
RANGE = RangeType()


def unify_numeric(a: Type, b: Type) -> Type | None:
    """Numeric promotion: int op real -> real; equal types pass through.

    Returns ``None`` when the operands cannot be combined.
    """
    if a == b:
        return a
    if isinstance(a, IntType) and isinstance(b, IntType):
        return IntType(max(a.width, b.width))
    if isinstance(a, RealType) and isinstance(b, IntType):
        return a
    if isinstance(a, IntType) and isinstance(b, RealType):
        return b
    if isinstance(a, RealType) and isinstance(b, RealType):
        return RealType(max(a.width, b.width))
    return None


def assignable(dst: Type, src: Type) -> bool:
    """True when a value of type ``src`` may be assigned to storage of
    type ``dst`` (exact match or int->real widening, elementwise for
    tuples/arrays)."""
    if dst == src:
        return True
    if isinstance(dst, RealType) and isinstance(src, IntType):
        return True
    if isinstance(dst, IntType) and isinstance(src, IntType):
        return True
    if isinstance(dst, TupleType) and isinstance(src, TupleType):
        return len(dst.elems) == len(src.elems) and all(
            assignable(d, s) for d, s in zip(dst.elems, src.elems)
        )
    if isinstance(dst, ArrayType) and isinstance(src, ArrayType):
        return dst.rank == src.rank and assignable(dst.elem, src.elem)
    return False


def storage_slots(t: Type) -> int:
    """Number of scalar slots a value of type ``t`` occupies inline.

    Arrays and class instances count as one slot (a descriptor/pointer);
    tuples and records are flattened.  The cost model charges per-slot
    for tuple construction/destruction — the effect the paper's CENN
    optimization removes.
    """
    if isinstance(t, TupleType):
        return sum(storage_slots(e) for e in t.elems)
    if isinstance(t, RecordType) and not t.is_class:
        return sum(storage_slots(ft) for _, ft in t.fields)
    return 1
