"""E6 — Paper Fig. 4: pprof-style code-centric profile of LULESH.

The paper's output is dominated by runtime noise: ``__sched_yield``
79 % at the top, compiler-generated ``coforall_fn_chplNN`` functions
mixed in, and the only recognizable user function
(CalcElemNodeNormals) at 0.9 % — "the output is a bit confusing".

Reproduced shape: the same three failure modes — a large
``__sched_yield`` entry, outlined ``forall_fn_chplN`` frames that hide
which user loop the time belongs to, and user functions far down the
list — versus the blame view of the very same samples (E7).
"""

from conftest import record_result, run_once

from repro.baselines.pprof import build_pprof_profile, render_pprof
from repro.bench import harness


def profile():
    return harness.lulesh_profile()


def test_fig4_pprof_output(benchmark, record):
    res = run_once(benchmark, profile)
    rows = build_pprof_profile(res.monitor.samples)
    total = len(res.monitor.samples)
    by_name = {r.function: r for r in rows}

    # __sched_yield is a top entry with a large share (paper: 79 %).
    sched = by_name.get("__sched_yield")
    assert sched is not None
    assert sched.flat / total > 0.15
    assert rows.index(sched) < 3

    # Compiler-generated outlined frames pollute the listing.
    outlined = [r for r in rows if r.function.startswith("forall_fn_chpl")]
    assert outlined
    assert sum(r.flat for r in outlined) / total > 0.2

    # The stacks are NOT glued: no outlined frame resolves to its
    # source loop in this view (that's the paper's complaint).
    names = {r.function for r in rows[:6]}
    assert any(n.startswith("forall_fn_chpl") or n == "__sched_yield" for n in names)

    record(
        "fig4_pprof_lulesh",
        render_pprof(res.monitor.samples, binary_name="lulesh", top=10)
        + "\n(paper Fig. 4: __sched_yield 79.0%, coforall_fn_chpl22 5.3%, "
        "CalcElemNodeNormals_chpl 0.9%)",
    )
