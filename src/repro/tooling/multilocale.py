"""Multi-locale profiling harness (paper step 3/4 + future work §VI).

The paper's experiments are single-locale, but its pipeline is designed
for more: step 3 is "embarrassingly parallel for multi-locale cases"
and step 4 aggregates per-node results.  This harness simulates an
L-locale run the way an SPMD launcher would: the *same program* runs
once per locale, parameterized by the config constants ``localeId`` and
``numLocales`` (the program partitions its own iteration space, as
Chapel block distributions do), and the per-locale blame reports merge
into one program-wide report.

Fleets are lossy, so the harness treats per-locale failure as routine:
a crashing locale is retried with exponential backoff, a straggler is
flagged against the per-locale wall-clock budget, and locales that stay
down are *marked missing* while the surviving reports still merge
(``allow_partial``) — the whole aggregation only fails when nothing
survived.

Aggregation goes *through the artifact layer*: each surviving locale's
run becomes a :class:`~repro.artifact.model.ProfileSnapshot` (persisted
as a per-locale ``.cbp`` when ``artifact_dir`` is given) and the
program-wide report is :func:`~repro.artifact.merge.merge_snapshots`
over them — the same merge ``repro merge`` applies to artifacts on
disk, so an in-process multi-locale profile and an offline merge of the
locale shards produce the identical report.

This is a simulation of the *aggregation* path only — it does not model
inter-locale communication (tracking data through GASNet is the paper's
future work, and ours).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..artifact.merge import merge_snapshots
from ..artifact.model import ProfileSnapshot, snapshot_from_result
from ..blame.report import BlameReport
from ..errors import (
    AggregationError,
    LocaleCrashError,
    LocaleTimeoutError,
    ReproError,
)
from ..resilience.retrying import backoff_attempts
from .profiler import ProfileResult, Profiler


@dataclass
class LocaleOutcome:
    """How one locale's run went (including its retry history)."""

    locale_id: int
    status: str  # "ok" | "straggler" | "crashed" | "timeout"
    attempts: int
    elapsed: float
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "straggler")


@dataclass
class MultiLocaleResult:
    """Per-locale profiles plus the merged program-wide report."""

    per_locale: list[ProfileResult]
    merged: BlameReport
    outcomes: list[LocaleOutcome] = field(default_factory=list)
    requested_locales: int = 0
    #: Per-locale artifact snapshots (same order as ``per_locale``).
    snapshots: list[ProfileSnapshot] = field(default_factory=list)
    #: The merge of ``snapshots`` (``merged`` is its report).
    merged_snapshot: "ProfileSnapshot | None" = None
    #: ``.cbp`` files written when ``artifact_dir`` was given
    #: (per-locale shards, then the merged artifact last).
    artifact_paths: list[str] = field(default_factory=list)

    @property
    def num_locales(self) -> int:
        return len(self.per_locale)

    @property
    def missing_locales(self) -> tuple[int, ...]:
        return tuple(o.locale_id for o in self.outcomes if not o.succeeded)

    @property
    def stragglers(self) -> tuple[int, ...]:
        return tuple(
            o.locale_id for o in self.outcomes if o.status == "straggler"
        )


def profile_locales(
    source: str,
    num_locales: int,
    filename: str = "program.chpl",
    config: dict[str, object] | None = None,
    num_threads: int = 12,
    threshold: int = 20011,
    locale_id_config: str = "localeId",
    num_locales_config: str = "numLocales",
    faults: "object | str | None" = None,
    locale_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.01,
    allow_partial: bool = True,
    drop_stragglers: bool = False,
    artifact_dir: str | None = None,
) -> MultiLocaleResult:
    """Profiles ``source`` once per locale and merges the reports.

    The program must declare ``config const localeId: int`` and
    ``config const numLocales: int`` (names overridable) and partition
    its own work by them.

    ``faults`` (a :class:`~repro.resilience.faults.FaultPlan` or spec
    string) degrades each locale independently and can crash or delay
    whole locales.  ``locale_timeout`` is the per-locale wall-clock
    budget in host seconds: a locale exceeding it is a straggler (kept,
    flagged) or — with ``drop_stragglers`` — treated as failed.  Failed
    locales are retried ``max_retries`` times with exponential backoff;
    locales that never succeed are marked missing on the merged report
    unless ``allow_partial`` is off, in which case the harness raises
    :class:`AggregationError`.

    ``artifact_dir`` persists each surviving locale as
    ``locale<N>.cbp`` plus the merged profile as ``merged.cbp`` — the
    shards ``repro merge`` would combine to the same result offline.
    """
    if num_locales < 1:
        raise AggregationError("need at least one locale")
    plan = None
    if faults is not None:
        from ..resilience.faults import FaultPlan

        plan = FaultPlan.parse(faults) if isinstance(faults, str) else faults

    from ..sampling.dataset import source_digest

    digest = source_digest(source)
    base = dict(config or {})
    per_locale: list[ProfileResult] = []
    snapshots: list[ProfileSnapshot] = []
    outcomes: list[LocaleOutcome] = []
    for locale in range(num_locales):
        cfg = dict(base)
        cfg[locale_id_config] = locale
        cfg[num_locales_config] = num_locales
        outcome, result = _run_one_locale(
            source,
            filename,
            cfg,
            locale,
            num_threads=num_threads,
            threshold=threshold,
            plan=plan,
            locale_timeout=locale_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            drop_stragglers=drop_stragglers,
        )
        outcomes.append(outcome)
        if result is not None:
            result.report.locale_id = locale
            per_locale.append(result)
            snapshots.append(
                snapshot_from_result(
                    result,
                    source_sha256=digest,
                    num_threads=num_threads,
                    locale_id=locale,
                )
            )
        elif not allow_partial:
            raise AggregationError(
                f"locale {locale} failed after {outcome.attempts} attempts: "
                f"{outcome.error}"
            )

    missing = tuple(o.locale_id for o in outcomes if not o.succeeded)
    if not snapshots:
        raise AggregationError(
            f"all {num_locales} locales failed; nothing to aggregate "
            f"(last error: {outcomes[-1].error})"
        )
    merged_snapshot = merge_snapshots(
        snapshots, program=filename, missing_locales=missing
    )

    artifact_paths: list[str] = []
    if artifact_dir is not None:
        from ..artifact.format import write_artifact

        os.makedirs(artifact_dir, exist_ok=True)
        for snap in snapshots:
            path = os.path.join(
                artifact_dir, f"locale{snap.meta.locale_id}.cbp"
            )
            write_artifact(path, snap)
            artifact_paths.append(path)
        merged_path = os.path.join(artifact_dir, "merged.cbp")
        write_artifact(merged_path, merged_snapshot)
        artifact_paths.append(merged_path)

    return MultiLocaleResult(
        per_locale=per_locale,
        merged=merged_snapshot.report,
        outcomes=outcomes,
        requested_locales=num_locales,
        snapshots=snapshots,
        merged_snapshot=merged_snapshot,
        artifact_paths=artifact_paths,
    )


def _run_one_locale(
    source: str,
    filename: str,
    cfg: dict[str, object],
    locale: int,
    num_threads: int,
    threshold: int,
    plan,
    locale_timeout: float | None,
    max_retries: int,
    retry_backoff: float,
    drop_stragglers: bool,
) -> tuple[LocaleOutcome, ProfileResult | None]:
    """One locale with bounded retry + backoff (the shared
    :func:`~repro.resilience.retrying.backoff_attempts` schedule —
    the same arithmetic the shard supervisor uses); never raises."""
    attempts = 0
    last_error: str | None = None
    last_status = "crashed"
    t_start = time.perf_counter()
    for attempt in backoff_attempts(max_retries, retry_backoff):
        attempts = attempt + 1
        t0 = time.perf_counter()
        try:
            if plan is not None and plan.should_crash(locale, attempt):
                raise LocaleCrashError(
                    locale, f"injected crash on locale {locale}"
                )
            delay = plan.straggle_seconds(locale) if plan is not None else 0.0
            if delay:
                time.sleep(delay)
            result = Profiler(
                source,
                filename=filename,
                config=cfg,
                num_threads=num_threads,
                threshold=threshold,
                faults=plan.for_locale(locale) if plan is not None else None,
            ).profile()
        except ReproError as exc:
            last_error = str(exc)
            last_status = "crashed"
            continue
        elapsed = time.perf_counter() - t0
        if locale_timeout is not None and elapsed > locale_timeout:
            if drop_stragglers:
                last_error = str(
                    LocaleTimeoutError(
                        locale,
                        f"locale {locale} took {elapsed:.3f}s "
                        f"(budget {locale_timeout:.3f}s)",
                    )
                )
                last_status = "timeout"
                continue
            return (
                LocaleOutcome(locale, "straggler", attempts, elapsed),
                result,
            )
        return LocaleOutcome(locale, "ok", attempts, elapsed), result
    return (
        LocaleOutcome(
            locale,
            last_status,
            attempts,
            time.perf_counter() - t_start,
            error=last_error,
        ),
        None,
    )
