"""Optimization-advisor passes: the paper's hand optimizations, detected.

Each pass statically recognizes one anti-pattern that Johnson &
Hollingsworth removed by hand after reading the blame tables:

* ``ZipperedIterationPass``   — MiniMD's de-zippering (§V.A);
* ``DomainRemapPass``         — MiniMD's hoisted domains / direct
  indexing instead of per-iteration slice views (§V.A);
* ``RecordFlatteningPass``    — CLOMP's ``partArray->zoneArray``
  flattening into one dense array (§V.B);
* ``TupleTemporariesPass``    — LULESH's CENN rewrite (§V.C);
* ``AllocationHoistPass``     — LULESH's Variable Globalization (§V.C);
* ``ParamUnrollPass``         — LULESH's ``param`` loop tags (Table VII).

All of them consume the shared :class:`AnalysisContext` substrate (IR,
CFG/dominators, natural loops, blame-pipeline data flow) and emit
:class:`Finding` records anchored to debug locations.
"""

from __future__ import annotations

from collections import defaultdict

from ..blame.dataflow import DataFlow, Root
from ..chapel.types import TupleType
from ..ir import instructions as I
from ..ir.module import BasicBlock, Function
from .context import AnalysisContext
from .diagnostics import Finding, Severity
from .passes import AnalysisPass, register_pass


def _root_names(df: DataFlow, roots: frozenset[Root]) -> list[str]:
    """User-visible variable names for a root set (temps hidden)."""
    names: set[str] = set()
    for key, _path in roots:
        meta = df.var_meta.get(key)
        if meta is not None and not meta.is_temp:
            names.add(meta.name)
    return sorted(names)


def _iter_blocks(fn: Function):
    for block in fn.blocks:
        for instr in block.instructions:
            yield block, instr


@register_pass
class ZipperedIterationPass(AnalysisPass):
    """Flags zippered iteration in code that runs repeatedly."""

    name = "zippered-iteration"
    description = "zip() iteration overhead in hot loops (MiniMD §V.A)"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in ctx.user_functions():
            df = ctx.dataflow(fn)
            # One zip() expression lowers to one IterInit per iterand,
            # all at the zip's source location — group them back.
            groups: dict[tuple[str, int], list[tuple[BasicBlock, I.IterInit]]]
            groups = defaultdict(list)
            for block, instr in _iter_blocks(fn):
                if isinstance(instr, I.IterInit) and instr.zippered:
                    groups[(instr.loc.filename, instr.loc.line)].append(
                        (block, instr)
                    )
            for (fname, line), items in groups.items():
                hot = any(ctx.is_hot(fn, b) for b, _ in items)
                variables: set[str] = set()
                for _, instr in items:
                    variables.update(
                        _root_names(df, df.roots_of(instr.iterable))
                    )
                names = sorted(variables)
                over = f" over {', '.join(names)}" if names else ""
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.WARNING if hot else Severity.INFO,
                        message=(
                            f"zippered iteration{over}: each step advances "
                            f"{len(items)} coordinated iterators"
                        ),
                        file=fname,
                        line=line,
                        function=ctx.source_context(fn),
                        variables=tuple(names),
                        remediation=(
                            "iterate one domain and index the arrays "
                            "directly (the paper's MiniMD de-zippering)"
                        ),
                        iids=tuple(i.iid for _, i in items),
                    )
                )
        return findings


@register_pass
class DomainRemapPass(AnalysisPass):
    """Flags slice/reindex/domain views rebuilt inside loops."""

    name = "loop-domain-remap"
    description = "per-iteration domain remap / slice views (MiniMD §V.A)"

    _DERIVING_DOMAIN_OPS = frozenset({"expand", "translate", "interior"})

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in ctx.user_functions():
            df = ctx.dataflow(fn)
            groups: dict[tuple[str, int], list[tuple[str, I.Instruction, frozenset[Root]]]]
            groups = defaultdict(list)
            for block, instr in _iter_blocks(fn):
                if not ctx.in_loop(fn, block):
                    continue
                if isinstance(instr, (I.ArraySlice, I.ArrayReindex)):
                    kind = (
                        "slice" if isinstance(instr, I.ArraySlice) else "reindex"
                    )
                    groups[(instr.loc.filename, instr.loc.line)].append(
                        (kind, instr, df.roots_of(instr.base))
                    )
                elif isinstance(instr, I.MakeDomain):
                    groups[(instr.loc.filename, instr.loc.line)].append(
                        ("domain build", instr, frozenset())
                    )
                elif (
                    isinstance(instr, I.DomainOp)
                    and instr.op in self._DERIVING_DOMAIN_OPS
                ):
                    groups[(instr.loc.filename, instr.loc.line)].append(
                        (f"domain {instr.op}", instr, df.roots_of(instr.base))
                    )
            for (fname, line), items in groups.items():
                variables: set[str] = set()
                for _, _, roots in items:
                    variables.update(_root_names(df, roots))
                names = sorted(variables)
                kinds = sorted({k for k, _, _ in items})
                of = f" of {', '.join(names)}" if names else ""
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.WARNING,
                        message=(
                            f"{'/'.join(kinds)}{of} rebuilt every loop "
                            "iteration (descriptor allocation + index "
                            "translation per pass)"
                        ),
                        file=fname,
                        line=line,
                        function=ctx.source_context(fn),
                        variables=tuple(names),
                        remediation=(
                            "hoist the domain/view out of the loop or "
                            "index the base array directly"
                        ),
                        iids=tuple(i.iid for _, i, _ in items),
                    )
                )
        return findings


@register_pass
class RecordFlatteningPass(AnalysisPass):
    """Flags indexing into an array field reached through a class
    pointer — the CLOMP ``partArray[i].zoneArray[j]`` double hop."""

    name = "record-flattening"
    description = "nested class indirection; flattening candidate (CLOMP §V.B)"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in ctx.user_functions():
            df = ctx.dataflow(fn)
            # (field name) → evidence
            groups: dict[str, list[tuple[BasicBlock, I.ElemAddr, Root]]]
            groups = defaultdict(list)
            for block, instr in _iter_blocks(fn):
                if not isinstance(instr, I.ElemAddr):
                    continue
                for root in df.roots_of(instr.base):
                    cfields = [e for e in root[1] if e[0] == "cfield"]
                    if cfields:
                        groups[cfields[-1][1]].append((block, instr, root))
            for fieldname, items in groups.items():
                hot = any(ctx.is_hot(fn, b) for b, _, _ in items)
                owners: set[str] = set()
                for _, _, (key, _path) in items:
                    meta = df.var_meta.get(key)
                    if meta is not None and not meta.is_temp:
                        owners.add(meta.name)
                first = min(items, key=lambda t: (t[1].loc.line, t[1].iid))
                names = tuple(sorted(owners) + [fieldname])
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.WARNING if hot else Severity.INFO,
                        message=(
                            f"element access to field '{fieldname}' goes "
                            f"through a class indirection "
                            f"({' / '.join(sorted(owners)) or 'object'}"
                            f" -> {fieldname}[..]): two dependent loads "
                            "per access"
                        ),
                        file=first[1].loc.filename,
                        line=first[1].loc.line,
                        function=ctx.source_context(fn),
                        variables=names,
                        remediation=(
                            "flatten the per-object arrays into one "
                            "dense array indexed [object, element] "
                            "(the paper's CLOMP rewrite)"
                        ),
                        iids=tuple(i.iid for _, i, _ in items),
                    )
                )
        return findings


@register_pass
class TupleTemporariesPass(AnalysisPass):
    """Flags tuple construct/teardown churn inside loops (CENN)."""

    name = "tuple-temporaries"
    description = "tuple temporaries built per iteration (LULESH CENN §V.C)"

    #: Thresholds: a loop body constructing this many tuples and doing
    #: tuple-typed arithmetic is paying measurable churn; a stray
    #: literal tuple or two is normal code.
    MIN_MAKETUPLES = 3
    MIN_TUPLE_BINOPS = 2

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in ctx.user_functions():
            makes: list[I.MakeTuple] = []
            tuple_ops: list[I.BinOp] = []
            for block, instr in _iter_blocks(fn):
                if not ctx.in_loop(fn, block):
                    continue
                if isinstance(instr, I.MakeTuple):
                    makes.append(instr)
                elif isinstance(instr, I.BinOp) and isinstance(
                    getattr(instr.result, "type", None), TupleType
                ):
                    tuple_ops.append(instr)
            if (
                len(makes) < self.MIN_MAKETUPLES
                or len(tuple_ops) < self.MIN_TUPLE_BINOPS
            ):
                continue
            df = ctx.dataflow(fn)
            # Name the locals the temporaries land in (CENN's px/curx/sumx).
            landed: set[str] = set()
            make_regs = {m.result for m in makes} | {
                op.result for op in tuple_ops
            }
            for _, instr in _iter_blocks(fn):
                if isinstance(instr, I.Store) and instr.value in make_regs:
                    landed.update(_root_names(df, df.roots_of(instr.addr)))
            first = min(makes, key=lambda m: (m.loc.line, m.iid))
            findings.append(
                Finding(
                    rule=self.name,
                    severity=Severity.WARNING,
                    message=(
                        f"{len(makes)} tuple temporaries constructed and "
                        f"{len(tuple_ops)} tuple-arithmetic ops per loop "
                        "iteration: construct/destruct churn dominates "
                        "the useful flops"
                    ),
                    file=first.loc.filename,
                    line=first.loc.line,
                    function=ctx.source_context(fn),
                    variables=tuple(sorted(landed)),
                    remediation=(
                        "assign intermediate results directly into the "
                        "destination (the paper's CalcElemNodeNormals "
                        "rewrite, CENN)"
                    ),
                    iids=tuple(m.iid for m in makes),
                )
            )
        return findings


@register_pass
class AllocationHoistPass(AnalysisPass):
    """Flags array allocations that repeat per call or per iteration
    over a loop-invariant domain (Variable Globalization)."""

    name = "hoistable-allocation"
    description = "per-call/per-iteration array allocation (LULESH VG §V.C)"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in ctx.user_functions():
            if fn.source_name == "main" and fn.outlined_from is None:
                # main runs once; its entry-block allocations are free.
                only_loops = True
            else:
                only_loops = False
            df = ctx.dataflow(fn)
            for block, instr in _iter_blocks(fn):
                if not isinstance(instr, I.MakeArray):
                    continue
                in_loop = ctx.in_loop(fn, block)
                per_call = (
                    not in_loop
                    and not only_loops
                    and fn.name in ctx.loop_resident
                    # Loop-invariant domain: rooted in module globals,
                    # so the same extent is re-allocated every call.
                    and any(
                        key.kind == "global"
                        for key, _ in df.roots_of(instr.domain)
                    )
                )
                if not in_loop and not per_call:
                    continue
                target = self._alloc_target(fn, df, instr)
                how = (
                    "every loop iteration"
                    if in_loop
                    else "every call (and this function runs inside a loop)"
                )
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.WARNING,
                        message=(
                            f"array {target or '(temporary)'} is heap-"
                            f"allocated {how}"
                        ),
                        file=instr.loc.filename,
                        line=instr.loc.line,
                        function=ctx.source_context(fn),
                        variables=(target,) if target else (),
                        remediation=(
                            "hoist the declaration to module scope and "
                            "reuse the buffer (the paper's Variable "
                            "Globalization)"
                        ),
                        iids=(instr.iid,),
                    )
                )
        return findings

    @staticmethod
    def _alloc_target(
        fn: Function, df: DataFlow, alloc: I.MakeArray
    ) -> str | None:
        """Name of the variable the fresh array is stored into."""
        for _, instr in _iter_blocks(fn):
            if isinstance(instr, I.Store) and instr.value is alloc.result:
                names = _root_names(df, df.roots_of(instr.addr))
                if names:
                    return names[0]
        return None


@register_pass
class ParamUnrollPass(AnalysisPass):
    """Flags serial loops over small literal ranges that a ``param``
    tag would unroll at compile time (paper Table VII's P knobs).

    Literal-range ``for`` loops lower to a direct counter loop (not the
    iterator protocol): the index cell gets exactly two stores — a
    constant initialization and a ``+1`` increment — and the header
    compares it ``<=`` against a constant bound (possibly spilled into
    a ``_<name>_hi`` temporary).  That shape, with a trip count small
    enough to unroll, is the candidate.
    """

    name = "param-unroll"
    description = "small constant-trip loop; `for param` candidate (Table VII)"

    MAX_TRIP = 8

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in ctx.user_functions():
            findings.extend(self._scan_function(ctx, fn))
        return findings

    def _scan_function(
        self, ctx: AnalysisContext, fn: Function
    ) -> list[Finding]:
        allocas: dict[I.Register, I.Alloca] = {}
        for _, instr in _iter_blocks(fn):
            if isinstance(instr, I.Alloca) and instr.result is not None:
                allocas[instr.result] = instr
        stores_to: dict[I.Register, list[I.Value]] = defaultdict(list)
        for _, instr in _iter_blocks(fn):
            if (
                isinstance(instr, I.Store)
                and isinstance(instr.addr, I.Register)
                and instr.addr in allocas
            ):
                stores_to[instr.addr].append(instr.value)

        def is_load_of(value: I.Value, cell: I.Register) -> bool:
            return (
                isinstance(value, I.Register)
                and isinstance(value.producer, I.Load)
                and value.producer.addr is cell
            )

        def const_bound(value: I.Value) -> int | None:
            if isinstance(value, I.Constant) and isinstance(value.value, int):
                return value.value
            if (
                isinstance(value, I.Register)
                and isinstance(value.producer, I.Load)
                and isinstance(value.producer.addr, I.Register)
            ):
                cell = value.producer.addr
                vals = stores_to.get(cell, [])
                if (
                    len(vals) == 1
                    and isinstance(vals[0], I.Constant)
                    and isinstance(vals[0].value, int)
                ):
                    return vals[0].value
            return None

        findings: list[Finding] = []
        # An enclosing `param` loop clones its body: the same source
        # loop appears once per unrolled copy.  Report it once.
        emitted: set[tuple[str, int, str]] = set()
        for cell, alloca in allocas.items():
            if alloca.is_temp:
                continue
            dedup = (alloca.loc.filename, alloca.loc.line, alloca.var_name)
            if dedup in emitted:
                continue
            vals = stores_to.get(cell, [])
            if len(vals) != 2:
                continue
            inits = [
                v
                for v in vals
                if isinstance(v, I.Constant) and isinstance(v.value, int)
            ]
            steps = [
                v
                for v in vals
                if isinstance(v, I.Register)
                and isinstance(v.producer, I.BinOp)
                and v.producer.op == "+"
            ]
            if len(inits) != 1 or len(steps) != 1:
                continue
            inc = steps[0].producer
            unit = lambda a, b: (  # noqa: E731 — tiny local predicate
                is_load_of(a, cell)
                and isinstance(b, I.Constant)
                and b.value == 1
            )
            if not (unit(inc.lhs, inc.rhs) or unit(inc.rhs, inc.lhs)):
                continue
            lo = inits[0].value
            for block, instr in _iter_blocks(fn):
                if not (
                    isinstance(instr, I.BinOp)
                    and instr.op == "<="
                    and is_load_of(instr.lhs, cell)
                ):
                    continue
                hi = const_bound(instr.rhs)
                if hi is None:
                    continue
                trip = hi - lo + 1
                if not (2 <= trip <= self.MAX_TRIP):
                    break
                hot = ctx.is_hot(fn, block)
                emitted.add(dedup)
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.INFO,
                        message=(
                            f"loop over literal range {lo}..{hi} "
                            f"({trip} trips) pays per-iteration "
                            "counter/branch overhead "
                            + (
                                "inside a hot region"
                                if hot
                                else "at every execution"
                            )
                        ),
                        file=alloca.loc.filename,
                        line=alloca.loc.line,
                        function=ctx.source_context(fn),
                        variables=(alloca.var_name,),
                        remediation=(
                            f"tag the loop `for param "
                            f"{alloca.var_name} in {lo}..{hi}` to unroll "
                            "it at compile time (paper Table VII)"
                        ),
                        iids=(alloca.iid, instr.iid),
                    )
                )
                break
        return findings
