"""A1 — Adaptive collection: samples saved at matched ranking quality.

For each paper workload the bench profiles the full run, then the same
configuration with confidence-driven early stopping
(:mod:`repro.sampling.adaptive`), and scores the adaptive blame ranking
against the full one:

* ``reduction``      — fraction of the full run's samples the adaptive
  run never collected (the headline number; gated at ≥ 0.40);
* ``top5_overlap``   — full-run top-5 retention (gated at 1.0);
* ``resolved_tau``   — Kendall-τ over the pairs the full profile
  actually resolves (blame gap ≥ 0.005; gated at ≥ 0.9).  The plain
  τ is recorded alongside: it also counts statistical ties such as
  LULESH's symmetric ``hgfx``/``hgfy``/``hgfz`` arrays, whose order is
  arbitrary in any finite run;
* the decision trail itself — rounds, stop reason, final CI half-width.

Per-workload overflow thresholds keep each outer timestep a modest
number of samples (the stopping rule's half-stream guard then protects
against settling inside the first, atypical timestep), and the CI
half-width target is tuned to where each workload's ranking is resolved
— both recorded in the JSON so the numbers are reproducible.

Everything is deterministic (the interpreter's virtual clock drives
sampling).  Results land in ``BENCH_adaptive.json`` at the repository
root.  Run directly (``python benchmarks/bench_adaptive.py [--quick]``)
or via pytest (``pytest -m adaptive benchmarks``); ``--quick`` measures
MiniMD only.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.bench.harness import host_info
from repro.bench.programs import clomp, lulesh, minimd
from repro.blame.confidence import resolved_kendall_tau
from repro.resilience.stability import kendall_tau, top_n_overlap
from repro.sampling.adaptive import AdaptiveConfig
from repro.tooling.profiler import Profiler

NUM_THREADS = 12
RESULT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_adaptive.json"
)

#: name -> (filename, build, config, threshold, adaptive ci_width).
WORKLOADS = {
    "minimd": (
        "minimd.chpl",
        lambda: minimd.build_source(),
        lambda: minimd.config_for(steps=9),
        997,
        0.025,
    ),
    "clomp": (
        "clomp.chpl",
        lambda: clomp.build_source(),
        lambda: clomp.config_for(timesteps=30),
        4999,
        0.0125,
    ),
    "lulesh": (
        "lulesh.chpl",
        lambda: lulesh.build_source(),
        lambda: lulesh.config_for(max_steps=30),
        20011,
        0.01,
    ),
}

QUICK_WORKLOADS = ("minimd",)

#: Acceptance gates (ISSUE 7): adaptive must save >= 40 % of the
#: samples while keeping the full run's top-5 exactly and agreeing on
#: every resolved pair ordering.
MIN_REDUCTION = 0.40
MIN_RESOLVED_TAU = 0.9


def measure_workload(name: str) -> dict:
    filename, build, config_for, threshold, ci_width = WORKLOADS[name]
    source = build()
    config = config_for()

    def profiler():
        return Profiler(
            source,
            filename=filename,
            config=config,
            num_threads=NUM_THREADS,
            threshold=threshold,
        )

    full = profiler().profile()
    adaptive = profiler().profile(
        adaptive=AdaptiveConfig(ci_width=ci_width, round_samples=256)
    )
    trail = adaptive.adaptive
    full_samples = full.monitor.n_samples
    got = trail.samples_collected
    last = trail.rounds[-1] if trail.rounds else None
    return {
        "threshold": threshold,
        "ci_width": ci_width,
        "full_samples": full_samples,
        "adaptive_samples": got,
        "reduction": (full_samples - got) / full_samples if full_samples else 0.0,
        "stopped_early": trail.stopped_early,
        "stop_reason": trail.stop_reason,
        "rounds": len(trail.rounds),
        "final_half_width": last.max_half_width if last else None,
        "top5_overlap": top_n_overlap(full.report, adaptive.report, n=5),
        "kendall_tau": kendall_tau(full.report, adaptive.report),
        "resolved_tau": resolved_kendall_tau(full.report, adaptive.report),
    }


def run_adaptive_bench(quick: bool = False) -> dict:
    names = QUICK_WORKLOADS if quick else tuple(WORKLOADS)
    results = {
        "config": {
            "num_threads": NUM_THREADS,
            "round_samples": 256,
            "gates": {
                "min_reduction": MIN_REDUCTION,
                "top5_overlap": 1.0,
                "min_resolved_tau": MIN_RESOLVED_TAU,
            },
            "quick": quick,
        },
        "host": host_info(),
        "workloads": {name: measure_workload(name) for name in names},
    }
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = ["adaptive early stopping vs the full run"]
    for name, r in results["workloads"].items():
        lines.append(
            f"  {name:7s} {r['adaptive_samples']:6d}/{r['full_samples']:6d} "
            f"samples ({100 * r['reduction']:.1f}% saved, "
            f"{r['rounds']} rounds)  top5={r['top5_overlap']:.2f}  "
            f"tau={r['kendall_tau']:+.3f}  "
            f"resolved_tau={r['resolved_tau']:+.3f}"
        )
    return "\n".join(lines)


def check_gates(results: dict) -> None:
    for name, r in results["workloads"].items():
        assert r["stopped_early"], f"{name}: adaptive run never stopped early"
        assert r["reduction"] >= MIN_REDUCTION, (
            f"{name}: saved only {100 * r['reduction']:.1f}% of samples "
            f"(gate: {100 * MIN_REDUCTION:.0f}%)"
        )
        assert r["top5_overlap"] == 1.0, (
            f"{name}: adaptive top-5 overlap {r['top5_overlap']:.2f} != 1.0"
        )
        assert r["resolved_tau"] >= MIN_RESOLVED_TAU, (
            f"{name}: resolved tau {r['resolved_tau']:.3f} "
            f"< {MIN_RESOLVED_TAU}"
        )


@pytest.mark.adaptive
def test_adaptive_saves_samples_quick():
    """CI smoke: MiniMD stops early, saves >= 40 % of the samples, and
    keeps the full run's resolved ranking exactly."""
    results = run_adaptive_bench(quick=True)
    print("\n" + render(results))
    check_gates(results)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    results = run_adaptive_bench(quick=quick)
    print(render(results))
    check_gates(results)
    print("all gates passed")
