"""The paper's §V.C LULESH study:

* the code-centric baseline is unreadable (Fig. 4);
* the blame view names the hourglass-force variables (Table VI);
* guided by them, apply P1 (param unrolling), VG (variable
  globalization), and CENN (tuple-temporary elimination) — Table IX.

Run:  python examples/lulesh_optimization_study.py
"""

from repro.baselines.pprof import render_pprof
from repro.bench import harness
from repro.bench.programs import lulesh
from repro.views import render_data_centric


def main() -> None:
    print("=" * 72)
    print("What a code-centric profiler shows for LULESH (paper Fig. 4)")
    print("=" * 72)
    prof = harness.lulesh_profile()
    print(render_pprof(prof.monitor.samples, binary_name="lulesh", top=8))
    print()
    print(
        "__sched_yield and forall_fn_chplN frames dominate; nothing names\n"
        "a user-level variable or loop."
    )

    print()
    print("=" * 72)
    print("The blame view of the SAME samples (paper Table VI)")
    print("=" * 72)
    print(render_data_centric(prof.report, top=14, min_blame=0.02))
    print()
    print(
        "hgfx/hgfy/hgfz, hourgam and hourmod* point into the hourglass\n"
        "block (Fig. 5); determ/dvdx expose the per-call allocations;\n"
        "b_x exposes the tuple churn in CalcElemNodeNormals."
    )

    print()
    print("=" * 72)
    print("Applying the three optimizations (paper Table IX)")
    print("=" * 72)
    data = harness.lulesh_table_ix()
    paper = {"Original": 1.00, "P 1": 1.07, "VG": 1.25, "CENN": 1.08, "Best Case": 1.38}
    print(f"{'variant':<12} {'time(s)':>10} {'speedup':>8} {'paper':>6}")
    for tag in ("Original", "P 1", "VG", "CENN", "Best Case"):
        d = data[tag]
        print(f"{tag:<12} {d['time']:>10.4f} {d['speedup']:>8.2f} {paper[tag]:>6.2f}")


if __name__ == "__main__":
    main()
