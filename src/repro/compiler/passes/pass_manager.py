"""Pass manager: ordering, verification, and the --fast pipeline."""

from __future__ import annotations

from typing import Callable, Iterable

from ...ir.module import Module
from ...ir.verifier import verify_module

#: A pass takes a module and returns True if it changed anything.
Pass = Callable[[Module], bool]


class PassManager:
    """Runs passes in order, re-verifying after each (paranoid mode —
    the blame analysis downstream assumes well-formed IR)."""

    def __init__(self, passes: Iterable[tuple[str, Pass]], verify: bool = True) -> None:
        self.passes = list(passes)
        self.verify = verify
        self.log: list[tuple[str, bool]] = []

    def run(self, module: Module) -> bool:
        changed_any = False
        for name, p in self.passes:
            changed = p(module)
            self.log.append((name, changed))
            changed_any = changed_any or changed
            if self.verify:
                verify_module(module)
        return changed_any


def default_fast_passes() -> list[tuple[str, Pass]]:
    from .constant_fold import constant_fold
    from .copy_prop import copy_propagate
    from .dce import dead_code_eliminate
    from .inline import inline_small_functions
    from .simplify_cfg import simplify_cfg

    return [
        ("inline", inline_small_functions),
        ("constant-fold", constant_fold),
        ("copy-prop", copy_propagate),
        ("dce", dead_code_eliminate),
        ("simplify-cfg", simplify_cfg),
        # A second round: inlining exposes more folding.
        ("constant-fold-2", constant_fold),
        ("copy-prop-2", copy_propagate),
        ("dce-2", dead_code_eliminate),
        ("simplify-cfg-2", simplify_cfg),
    ]


def run_fast_pipeline(module: Module) -> bool:
    """Applies the full --fast pipeline in place."""
    return PassManager(default_fast_passes()).run(module)
