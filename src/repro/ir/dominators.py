"""Dominator and post-dominator trees; control-dependence computation.

Implements the Cooper–Harvey–Kennedy iterative dominance algorithm and
the classic Ferrante–Ottenstein–Warren control-dependence construction
(via post-dominance frontiers).  The paper's implicit blame transfer —
"all variables within control dependent basic blocks have a relationship
to the implicit variables responsible for the control flow" (§IV.A) —
is computed directly from :func:`control_dependence`.
"""

from __future__ import annotations

from .cfg import CFG
from .module import BasicBlock


class DominatorTree:
    """Immediate-dominator map computed over a CFG (or its reverse).

    ``idom[entry] is entry`` by convention; unreachable blocks are
    absent from the map.
    """

    def __init__(self, idom: dict[BasicBlock, BasicBlock], root: BasicBlock) -> None:
        self.idom = idom
        self.root = root

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: BasicBlock | None = b
        while node is not None:
            if node is a:
                return True
            if node is self.root:
                return False
            node = self.idom.get(node)
        return False

    def children(self) -> dict[BasicBlock, list[BasicBlock]]:
        out: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.idom}
        for b, d in self.idom.items():
            if b is not self.root:
                out.setdefault(d, []).append(b)
        return out


def _compute_idom(
    nodes: list[BasicBlock],
    preds: dict[BasicBlock, list[BasicBlock]],
    entry: BasicBlock,
) -> dict[BasicBlock, BasicBlock]:
    """Cooper–Harvey–Kennedy iterative dominator computation.

    ``nodes`` must be in reverse postorder starting at ``entry``.
    """
    index = {b: i for i, b in enumerate(nodes)}
    idom: dict[BasicBlock, BasicBlock] = {entry: entry}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for b in nodes:
            if b is entry:
                continue
            candidates = [p for p in preds.get(b, []) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(p, new_idom)
            if idom.get(b) is not new_idom:
                idom[b] = new_idom
                changed = True
    return idom


def dominator_tree(cfg: CFG) -> DominatorTree:
    """Dominator tree of the forward CFG."""
    rpo = cfg.reverse_postorder()
    idom = _compute_idom(rpo, cfg.preds, cfg.entry)
    return DominatorTree(idom, cfg.entry)


class _VirtualExit(BasicBlock):
    """Synthetic sink joining all exit blocks for post-dominance."""

    def __init__(self) -> None:
        super().__init__("virtual_exit")


def postdominator_tree(cfg: CFG) -> tuple[DominatorTree, BasicBlock]:
    """Post-dominator tree, computed as dominators of the reversed CFG
    rooted at a virtual exit.  Returns (tree, virtual_exit)."""
    vexit = _VirtualExit()
    exits = cfg.exit_blocks()
    reachable = cfg.reachable()

    # Reversed edges: succs become preds and vice versa; every real exit
    # gains an edge to the virtual exit.
    rev_succs: dict[BasicBlock, list[BasicBlock]] = {vexit: list(exits)}
    rev_preds: dict[BasicBlock, list[BasicBlock]] = {vexit: []}
    for b in reachable:
        rev_succs[b] = list(cfg.preds[b])
        rev_preds[b] = list(cfg.succs[b])
        if b in exits:
            rev_preds[b].append(vexit)

    # Reverse postorder of the reversed graph from the virtual exit.
    seen: set[BasicBlock] = set()
    order: list[BasicBlock] = []
    stack: list[tuple[BasicBlock, int]] = [(vexit, 0)]
    seen.add(vexit)
    while stack:
        b, i = stack[-1]
        succs = rev_succs.get(b, [])
        if i < len(succs):
            stack[-1] = (b, i + 1)
            s = succs[i]
            if s not in seen:
                seen.add(s)
                stack.append((s, 0))
        else:
            order.append(b)
            stack.pop()
    order.reverse()

    idom = _compute_idom(order, rev_preds, vexit)
    return DominatorTree(idom, vexit), vexit


def control_dependence(cfg: CFG) -> dict[BasicBlock, set[BasicBlock]]:
    """Maps each block B to the set of blocks it is control-dependent on.

    B is control dependent on A iff A has successors S1, S2 such that B
    post-dominates S1 but not A itself (Ferrante–Ottenstein–Warren).
    Computed via post-dominance frontiers: for each edge (A → S) where A
    does not post-dominate... walk S up the post-dominator tree until
    reaching ipostdom(A), marking each visited block as dependent on A.
    """
    pdt, vexit = postdominator_tree(cfg)
    deps: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in cfg.blocks}
    for a in cfg.blocks:
        succs = cfg.succs[a]
        if len(succs) < 2:
            continue
        a_ipdom = pdt.idom.get(a)
        for s in succs:
            runner: BasicBlock | None = s
            while runner is not None and runner is not a_ipdom and runner is not vexit:
                if runner in deps:
                    deps[runner].add(a)
                if runner is a:
                    # Loop edge: the branch controls its own block too.
                    break
                runner = pdt.idom.get(runner)
    return deps
