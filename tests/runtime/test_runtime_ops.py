"""Additional runtime operation tests: domain/range/array methods,
output formatting, worker-task failure paths, edge semantics."""

import pytest

from repro.runtime.interpreter import ExecutionError

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import output_of, run_src


class TestDomainRangeMethods:
    def test_domain_size_low_high(self):
        src = """
var D: domain(1) = {3..12};
proc main() { writeln(D.size(), D.low(), D.high()); }
"""
        assert output_of(src) == ["10 3 12"]

    def test_domain_2d_low_high_tuples(self):
        src = """
var D: domain(2) = {1..4, 0..2};
proc main() {
  var lo = D.low();
  var hi = D.high();
  writeln(lo[0], lo[1], hi[0], hi[1]);
}
"""
        assert output_of(src) == ["1 0 4 2"]

    def test_domain_dim(self):
        src = """
var D: domain(2) = {1..4, 5..9};
proc main() {
  var r = D.dim(1);
  writeln(r.low(), r.high(), r.size());
}
"""
        assert output_of(src) == ["5 9 5"]

    def test_expand_translate_interior(self):
        src = """
var D: domain(1) = {2..9};
proc main() {
  writeln(D.expand(2).size());
  writeln(D.translate(10).low());
  writeln(D.interior(1).size());
}
"""
        assert output_of(src) == ["12", "12", "6"]

    def test_range_methods(self):
        src = "proc main() { var r = 0..20 by 5; writeln(r.size(), r.low(), r.high()); }"
        assert output_of(src) == ["5 0 20"]

    def test_array_size_and_domain(self):
        src = """
var A: [2..7] real;
proc main() {
  writeln(A.size());
  writeln(A.domain().low());
}
"""
        assert output_of(src) == ["6", "2"]


class TestOutputFormatting:
    def test_writeln_array(self):
        src = """
var A: [0..3] int;
proc main() {
  for i in 0..3 { A[i] = i * i; }
  writeln(A);
}
"""
        assert output_of(src) == ["0 1 4 9"]

    def test_writeln_record(self):
        src = """
record P { var x: real; var y: real; }
proc main() { writeln(new P(1.5, 2.5)); }
"""
        assert output_of(src) == ["(x = 1.5, y = 2.5)"]

    def test_writeln_tuple_and_bool(self):
        src = "proc main() { writeln((1, 2.5), true); }"
        assert output_of(src) == ["(1, 2.5) true"]

    def test_string_concat(self):
        src = 'proc main() { writeln("a" + "b"); }'
        assert output_of(src) == ["ab"]


class TestWorkerFailures:
    def test_runtime_error_in_worker_propagates(self):
        src = """
var A: [0..9] real;
proc main() {
  forall i in 0..9 {
    A[i + 100] = 1.0;
  }
}
"""
        with pytest.raises(ExecutionError, match="out of bounds"):
            run_src(src)

    def test_halt_in_worker(self):
        src = """
proc main() {
  forall i in 0..9 {
    if i == 5 then halt("worker halt");
  }
}
"""
        r = run_src(src)
        assert r.halted and "worker halt" in r.halt_message


class TestEdgeSemantics:
    def test_reduce_over_domain(self):
        src = """
var D: domain(1) = {1..10};
proc main() { writeln(+ reduce D); }
"""
        assert output_of(src) == ["55"]

    def test_iterate_2d_array_elements(self):
        src = """
var M: [0..1, 0..1] int;
proc main() {
  var k = 1;
  for m in M {
    m = k;
    k += 1;
  }
  writeln(M[0, 0], M[0, 1], M[1, 0], M[1, 1]);
}
"""
        assert output_of(src) == ["1 2 3 4"]

    def test_select_on_strings(self):
        src = """
proc main() {
  var s = "beta";
  select s {
    when "alpha" do writeln(1);
    when "beta" do writeln(2);
    otherwise writeln(0);
  }
}
"""
        assert output_of(src) == ["2"]

    def test_negative_step_loop(self):
        # The counted-loop fast path needs a *constant* negative step
        # to pick the right comparison (documented restriction).
        src = 'proc main() { for i in 5..1 by -1 { write(i); } writeln(""); }'
        assert output_of(src) == ["54321"]

    def test_while_with_do_form(self):
        src = "proc main() { var n = 0; while n < 3 do n += 1; writeln(n); }"
        assert output_of(src) == ["3"]

    def test_deeply_nested_records(self):
        src = """
record Inner { var v: real; }
record Mid { var inner: Inner; }
record Outer { var mid: Mid; }
var o: [0..1] Outer;
proc main() {
  o[1].mid.inner.v = 4.5;
  writeln(o[1].mid.inner.v, o[0].mid.inner.v);
}
"""
        assert output_of(src) == ["4.5 0.0"]

    def test_record_param_copy_semantics(self):
        src = """
record P { var x: real; }
proc tryMutate(p: P) { p.x = 99.0; }
proc main() {
  var r = new P(1.0);
  tryMutate(r);
  writeln(r.x);
}
"""
        # records pass by value ("in" intent copies)
        assert output_of(src) == ["1.0"]

    def test_class_param_reference_semantics(self):
        src = """
class C { var x: real; }
proc mutate(c: C) { c.x = 99.0; }
proc main() {
  var r = new C(1.0);
  mutate(r);
  writeln(r.x);
}
"""
        assert output_of(src) == ["99.0"]

    def test_slice_of_2d_row(self):
        src = """
var M: [0..3, 0..3] real;
proc main() {
  var row = M[2..2, 0..3];
  row[2, 1] = 7.5;
  writeln(M[2, 1]);
}
"""
        assert output_of(src) == ["7.5"]

    def test_empty_range_loop_body_never_runs(self):
        src = """
proc main() {
  var hit = false;
  for i in 10..0 { hit = true; }
  writeln(hit);
}
"""
        assert output_of(src) == ["false"]
