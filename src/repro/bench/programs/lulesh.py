"""LULESH — shock hydrodynamics proxy app (paper §V.C), mini-Chapel port.

Mirrors the Chapel LULESH call structure the paper profiles: ``main`` →
``LagrangeLeapFrog`` (≈ all runtime) → ``LagrangeNodal`` →
``CalcForceForNodes`` → ``CalcVolumeForceForElems`` →
{``IntegrateStressForElems``, ``CalcHourglassControlForElems`` →
``CalcFBHourglassForceForElems`` → ``CalcElemFBHourglassForce``}.
The mesh is simplified to per-element 8-node tuples (``8*real``), which
keeps exactly the variables of paper Table VI in exactly their
contexts: ``hgfx/y/z``, ``hourgam``, ``hourmodx/y/z`` in
CalcFBHourglassForceForElems; ``shx/y/z``, ``hx/y/z`` in
CalcElemFBHourglassForce; ``determ``/``dvdx`` in the volume-force
functions; ``b_x/y/z`` in IntegrateStressForElems.

Optimization variants (paper Tables VII–IX):

* **P1/P2/P3** — keep the ``param`` (compiler-unroll) keyword on loop
  1/2/3 of the Fig. 5 hourglass block; the original has all three.
* **U2/U3** — manually unroll loop 2/3 in source.
* **VG** — Variable Globalization: ``determ``/``dvdx/y/z`` move to
  module scope, eliminating per-call array allocation.
* **CENN** — CalcElemNodeNormals writes results straight into the
  passed-in ``b_x/y/z`` instead of building tuple temporaries.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_CONFIG: dict[str, object] = {
    "edgeElems": 4,
    "maxSteps": 2,
}


@dataclass(frozen=True)
class LuleshVariant:
    """Which optimizations/unroll tags are applied.

    The paper's *Original* is ``LuleshVariant()`` (all three ``param``
    tags present, no VG/CENN); its *Best Case* is P1 + VG + CENN.
    """

    p1: bool = True
    p2: bool = True
    p3: bool = True
    u2: bool = False
    u3: bool = False
    vg: bool = False
    cenn: bool = False

    @property
    def tag(self) -> str:
        if self == LuleshVariant():
            return "Original"
        parts = []
        for name, on in [("P1", self.p1), ("P2", self.p2), ("P3", self.p3)]:
            if on:
                parts.append(name)
        for name, on in [("U2", self.u2), ("U3", self.u3)]:
            if on:
                parts.append(name)
        if self.vg:
            parts.append("VG")
        if self.cenn:
            parts.append("CENN")
        return "+".join(parts) if parts else "0 params"


ORIGINAL = LuleshVariant()
BEST_CASE = LuleshVariant(p1=True, p2=False, p3=False, vg=True, cenn=True)
VG_ONLY = LuleshVariant(vg=True)
CENN_ONLY = LuleshVariant(cenn=True)
P1_ONLY = LuleshVariant(p1=True, p2=False, p3=False)

#: Paper Table VII's eleven unrolling configurations.
TABLE_VII_VARIANTS: list[tuple[str, LuleshVariant]] = [
    ("Original", ORIGINAL),
    ("0 params", LuleshVariant(p1=False, p2=False, p3=False)),
    ("P 1", LuleshVariant(p1=True, p2=False, p3=False)),
    ("P 2", LuleshVariant(p1=False, p2=True, p3=False)),
    ("P 3", LuleshVariant(p1=False, p2=False, p3=True)),
    ("P1+P2", LuleshVariant(p1=True, p2=True, p3=False)),
    ("P1+P3", LuleshVariant(p1=True, p2=False, p3=True)),
    ("P2+P3", LuleshVariant(p1=False, p2=True, p3=True)),
    ("P1+U2", LuleshVariant(p1=True, p2=False, p3=False, u2=True)),
    ("P1+U3", LuleshVariant(p1=True, p2=False, p3=False, u3=True)),
    ("P1+U2+U3", LuleshVariant(p1=True, p2=False, p3=False, u2=True, u3=True)),
]

_PRELUDE = """
// LULESH (mini-Chapel port) -- Livermore unstructured Lagrangian
// explicit shock hydrodynamics proxy application
config const edgeElems: int = 4;
config const maxSteps: int = 2;
config const hgcoef: real = 3.0;
config const dt: real = 0.0001;

var numElems = edgeElems * edgeElems * edgeElems;
var Elems: domain(1) = {0..numElems-1};

var x: [Elems] 8*real;
var y: [Elems] 8*real;
var z: [Elems] 8*real;
var xd: [Elems] 8*real;
var yd: [Elems] 8*real;
var zd: [Elems] 8*real;
var fx: [Elems] 8*real;
var fy: [Elems] 8*real;
var fz: [Elems] 8*real;
var x8n: [Elems] 8*real;
var y8n: [Elems] 8*real;
var z8n: [Elems] 8*real;
var sigxx: [Elems] real;
var volo: [Elems] real;
var gammaCoef: [0..3, 0..7] real;
"""

_VG_GLOBALS = """
// Variable Globalization: hoisted from CalcVolumeForceForElems /
// CalcHourglassControlForElems so they are allocated once, not per call
var determG: [Elems] real;
var dvdxG: [Elems] 8*real;
var dvdyG: [Elems] 8*real;
var dvdzG: [Elems] 8*real;
"""

_INIT = """
proc initMesh() {
  for i in 0..3 {
    for j in 0..7 {
      gammaCoef[i, j] = ((i + j) % 2) * 2.0 - 1.0;
    }
  }
  forall e in Elems {
    for param k in 0..7 {
      x[e][k] = e * 0.1 + k * 0.01;
      y[e][k] = e * 0.07 + k * 0.013;
      z[e][k] = e * 0.05 + k * 0.017;
      xd[e][k] = 0.001 * (k + 1);
      yd[e][k] = 0.002 * (k + 1);
      zd[e][k] = 0.0015 * (k + 1);
    }
    volo[e] = 1.0 + 0.001 * e;
    sigxx[e] = 0.0 - 0.5 - 0.0001 * e;
  }
}
"""

_CENN_ORIGINAL = """
proc CalcElemNodeNormals(ref b_x: 8*real, ref b_y: 8*real, ref b_z: 8*real, e: int) {
  // original: partial results flow through tuple temporaries built and
  // torn down per face (6 faces per element)
  proc faceNormal(ex: 8*real, ey: 8*real, ez: 8*real, i0: int, i1: int, i2: int, i3: int): 3*real {
    var bisect0 = (ex[i2] - ex[i0], ey[i2] - ey[i0], ez[i2] - ez[i0]);
    var bisect1 = (ex[i3] - ex[i1], ey[i3] - ey[i1], ez[i3] - ez[i1]);
    var area = (bisect0[1] * bisect1[2] - bisect0[2] * bisect1[1],
                bisect0[2] * bisect1[0] - bisect0[0] * bisect1[2],
                bisect0[0] * bisect1[1] - bisect0[1] * bisect1[0]);
    return area * 0.25;
  }
  for param k in 0..7 {
    b_x[k] = 0.0;
    b_y[k] = 0.0;
    b_z[k] = 0.0;
  }
  var ex = x[e];
  var ey = y[e];
  var ez = z[e];
  for f in 0..5 {
    var i0 = f % 8;
    var i1 = (f + 1) % 8;
    var i2 = (f + 2) % 8;
    var i3 = (f + 3) % 8;
    var n = faceNormal(ex, ey, ez, i0, i1, i2, i3);
    // partial results are spread to the four face corners through
    // 4-tuple temporaries added with tuple arithmetic (the
    // construction/destruction churn CENN removes)
    var px = (n[0], n[0], n[0], n[0]);
    var py = (n[1], n[1], n[1], n[1]);
    var pz = (n[2], n[2], n[2], n[2]);
    var curx = (b_x[i0], b_x[i1], b_x[i2], b_x[i3]);
    var cury = (b_y[i0], b_y[i1], b_y[i2], b_y[i3]);
    var curz = (b_z[i0], b_z[i1], b_z[i2], b_z[i3]);
    var sumx = curx + px;
    var sumy = cury + py;
    var sumz = curz + pz;
    b_x[i0] = sumx[0];
    b_x[i1] = sumx[1];
    b_x[i2] = sumx[2];
    b_x[i3] = sumx[3];
    b_y[i0] = sumy[0];
    b_y[i1] = sumy[1];
    b_y[i2] = sumy[2];
    b_y[i3] = sumy[3];
    b_z[i0] = sumz[0];
    b_z[i1] = sumz[1];
    b_z[i2] = sumz[2];
    b_z[i3] = sumz[3];
  }
}
"""

_CENN_OPTIMIZED = """
proc CalcElemNodeNormals(ref b_x: 8*real, ref b_y: 8*real, ref b_z: 8*real, e: int) {
  // CENN optimization: intermediate results assigned directly to the
  // passed-in tuples -- no tuple temporaries, no tuple adds
  proc faceNormalDirect(ref b_x: 8*real, ref b_y: 8*real, ref b_z: 8*real,
                        ex: 8*real, ey: 8*real, ez: 8*real,
                        i0: int, i1: int, i2: int, i3: int) {
    var b0x = ex[i2] - ex[i0];
    var b0y = ey[i2] - ey[i0];
    var b0z = ez[i2] - ez[i0];
    var b1x = ex[i3] - ex[i1];
    var b1y = ey[i3] - ey[i1];
    var b1z = ez[i3] - ez[i1];
    var ax = (b0y * b1z - b0z * b1y) * 0.25;
    var ay = (b0z * b1x - b0x * b1z) * 0.25;
    var az = (b0x * b1y - b0y * b1x) * 0.25;
    b_x[i0] += ax;
    b_x[i1] += ax;
    b_x[i2] += ax;
    b_x[i3] += ax;
    b_y[i0] += ay;
    b_y[i1] += ay;
    b_y[i2] += ay;
    b_y[i3] += ay;
    b_z[i0] += az;
    b_z[i1] += az;
    b_z[i2] += az;
    b_z[i3] += az;
  }
  for param k in 0..7 {
    b_x[k] = 0.0;
    b_y[k] = 0.0;
    b_z[k] = 0.0;
  }
  var ex = x[e];
  var ey = y[e];
  var ez = z[e];
  for f in 0..5 {
    var i0 = f % 8;
    var i1 = (f + 1) % 8;
    var i2 = (f + 2) % 8;
    var i3 = (f + 3) % 8;
    faceNormalDirect(b_x, b_y, b_z, ex, ey, ez, i0, i1, i2, i3);
  }
}
"""

_INTEGRATE_STRESS = """
proc IntegrateStressForElems(determ: [?] real) {
  forall e in Elems {
    var b_x: 8*real;
    var b_y: 8*real;
    var b_z: 8*real;
    CalcElemNodeNormals(b_x, b_y, b_z, e);
    var stress = sigxx[e];
    for param k in 0..7 {
      fx[e][k] = fx[e][k] - stress * b_x[k];
      fy[e][k] = fy[e][k] - stress * b_y[k];
      fz[e][k] = fz[e][k] - stress * b_z[k];
    }
    determ[e] = volo[e] * (1.0 + 0.001 * CalcElemVolume(e));
  }
}
"""

_ELEM_VOLUME = """
proc CalcElemVolume(e: int): real {
  // jacobian-determinant style volume from the corner coordinates
  var ex = x[e];
  var ey = y[e];
  var ez = z[e];
  var v = 0.0;
  for param c in 0..3 {
    var dx20 = ex[(c + 2) % 8] - ex[c];
    var dy20 = ey[(c + 2) % 8] - ey[c];
    var dz20 = ez[(c + 2) % 8] - ez[c];
    var dx40 = ex[(c + 4) % 8] - ex[c];
    var dy40 = ey[(c + 4) % 8] - ey[c];
    var dz40 = ez[(c + 4) % 8] - ez[c];
    var dx10 = ex[(c + 1) % 8] - ex[c];
    var dy10 = ey[(c + 1) % 8] - ey[c];
    var dz10 = ez[(c + 1) % 8] - ez[c];
    v += dx10 * (dy20 * dz40 - dy40 * dz20)
       + dy10 * (dz20 * dx40 - dz40 * dx20)
       + dz10 * (dx20 * dy40 - dx40 * dy20);
  }
  return v / 12.0;
}
"""

_ELEM_FB = """
proc CalcElemFBHourglassForce(hourgam: 8*(4*real), e: int, coefh: real,
                              ref hgfx: 8*real, ref hgfy: 8*real, ref hgfz: 8*real) {
  var hx: 4*real;
  var hy: 4*real;
  var hz: 4*real;
  for i in 0..3 {
    hx[i] = 0.0;
    hy[i] = 0.0;
    hz[i] = 0.0;
    for k in 0..7 {
      hx[i] += hourgam[k][i] * xd[e][k];
      hy[i] += hourgam[k][i] * yd[e][k];
      hz[i] += hourgam[k][i] * zd[e][k];
    }
  }
  for k in 0..7 {
    var shx = coefh * (hourgam[k][0] * hx[0] + hourgam[k][1] * hx[1] + hourgam[k][2] * hx[2] + hourgam[k][3] * hx[3]);
    var shy = coefh * (hourgam[k][0] * hy[0] + hourgam[k][1] * hy[1] + hourgam[k][2] * hy[2] + hourgam[k][3] * hy[3]);
    var shz = coefh * (hourgam[k][0] * hz[0] + hourgam[k][1] * hz[1] + hourgam[k][2] * hz[2] + hourgam[k][3] * hz[3]);
    hgfx[k] = shx;
    hgfy[k] = shy;
    hgfz[k] = shz;
  }
}
"""

# The Fig. 5 hourglass block. Loop 1 runs i in 0..3, loops 2 and 3 run
# j in 0..7; each may carry the `param` keyword (P tags) or be manually
# unrolled in source (U tags).
_LOOP2_BODY = """      hourmodx += x8n[e][{j}] * gammaCoef[i, {j}];
      hourmody += y8n[e][{j}] * gammaCoef[i, {j}];
      hourmodz += z8n[e][{j}] * gammaCoef[i, {j}];
"""

_LOOP3_BODY = """      hourgam[{j}][i] = gammaCoef[i, {j}] - volinv * (dvdx[e][{j}] * hourmodx + dvdy[e][{j}] * hourmody + dvdz[e][{j}] * hourmodz);
"""


def _render_inner_loop(body_tpl: str, param: bool, unroll: bool) -> str:
    if unroll:
        return "".join(body_tpl.format(j=j) for j in range(8))
    kw = "param " if param else ""
    body = body_tpl.format(j="j")
    return f"    for {kw}j in 0..7 {{\n{body}    }}\n"


def _render_hourglass_block(v: "LuleshVariant") -> str:
    kw1 = "param " if v.p1 else ""
    loop2 = _render_inner_loop(_LOOP2_BODY, v.p2, v.u2)
    loop3 = _render_inner_loop(_LOOP3_BODY, v.p3, v.u3)
    return (
        f"  for {kw1}i in 0..3 {{\n"
        "    var hourmodx: real = 0.0;\n"
        "    var hourmody: real = 0.0;\n"
        "    var hourmodz: real = 0.0;\n"
        f"{loop2}"
        f"{loop3}"
        "  }\n"
    )


def _fb_hourglass(v: "LuleshVariant") -> str:
    block = _render_hourglass_block(v)
    # The block sits inside the forall over elements; indent it.
    indented = "\n".join(
        ("  " + line if line.strip() else line) for line in block.splitlines()
    )
    return f"""
proc CalcFBHourglassForceForElems(determ: [?] real, dvdx: [?] 8*real, dvdy: [?] 8*real, dvdz: [?] 8*real) {{
  forall e in Elems {{
    var hourgam: 8*(4*real);
    var volinv = 1.0 / determ[e];
{indented}
    var ss = sigxx[e];
    var coefh = hgcoef * 0.01 * ss * volinv;
    var hgfx: 8*real;
    var hgfy: 8*real;
    var hgfz: 8*real;
    CalcElemFBHourglassForce(hourgam, e, coefh, hgfx, hgfy, hgfz);
    for param k in 0..7 {{
      fx[e][k] = fx[e][k] + hgfx[k];
      fy[e][k] = fy[e][k] + hgfy[k];
      fz[e][k] = fz[e][k] + hgfz[k];
    }}
  }}
}}
"""


def _hourglass_control(vg: bool) -> str:
    if vg:
        decls = "  // VG: dvdx/y/z are module globals (no per-call allocation)"
        names = ("dvdxG", "dvdyG", "dvdzG")
    else:
        decls = (
            "  var dvdx: [Elems] 8*real;\n"
            "  var dvdy: [Elems] 8*real;\n"
            "  var dvdz: [Elems] 8*real;"
        )
        names = ("dvdx", "dvdy", "dvdz")
    nx, ny, nz = names
    return f"""
proc CalcHourglassControlForElems(determ: [?] real) {{
{decls}
  forall e in Elems {{
    for param k in 0..7 {{
      // VoluDer-style cross-dimension volume derivatives
      {nx}[e][k] = (y[e][(k + 1) % 8] * z[e][(k + 2) % 8] - y[e][(k + 2) % 8] * z[e][(k + 1) % 8]
                   + y[e][(k + 3) % 8] * z[e][(k + 4) % 8] - y[e][(k + 4) % 8] * z[e][(k + 3) % 8]) / 12.0;
      {ny}[e][k] = (z[e][(k + 1) % 8] * x[e][(k + 2) % 8] - z[e][(k + 2) % 8] * x[e][(k + 1) % 8]
                   + z[e][(k + 3) % 8] * x[e][(k + 4) % 8] - z[e][(k + 4) % 8] * x[e][(k + 3) % 8]) / 12.0;
      {nz}[e][k] = (x[e][(k + 1) % 8] * y[e][(k + 2) % 8] - x[e][(k + 2) % 8] * y[e][(k + 1) % 8]
                   + x[e][(k + 3) % 8] * y[e][(k + 4) % 8] - x[e][(k + 4) % 8] * y[e][(k + 3) % 8]) / 12.0;
      x8n[e][k] = x[e][k];
      y8n[e][k] = y[e][k];
      z8n[e][k] = z[e][k];
    }}
    determ[e] = determ[e] * (1.0 + 0.00001 * e);
  }}
  CalcFBHourglassForceForElems(determ, {nx}, {ny}, {nz});
}}
"""


def _volume_force(vg: bool) -> str:
    if vg:
        return """
proc CalcVolumeForceForElems() {
  // VG: determ is a module global (no per-call allocation)
  IntegrateStressForElems(determG);
  CalcHourglassControlForElems(determG);
}
"""
    return """
proc CalcVolumeForceForElems() {
  var determ: [Elems] real;
  IntegrateStressForElems(determ);
  CalcHourglassControlForElems(determ);
}
"""


_TAIL = """
proc CalcForceForNodes() {
  forall e in Elems {
    for param k in 0..7 {
      fx[e][k] = 0.0;
      fy[e][k] = 0.0;
      fz[e][k] = 0.0;
    }
  }
  CalcVolumeForceForElems();
}

proc LagrangeNodal() {
  CalcForceForNodes();
  forall e in Elems {
    for param k in 0..7 {
      xd[e][k] = xd[e][k] + fx[e][k] * dt;
      yd[e][k] = yd[e][k] + fy[e][k] * dt;
      zd[e][k] = zd[e][k] + fz[e][k] * dt;
      x[e][k] = x[e][k] + xd[e][k] * dt;
      y[e][k] = y[e][k] + yd[e][k] * dt;
      z[e][k] = z[e][k] + zd[e][k] * dt;
    }
  }
}

proc LagrangeElements() {
  forall e in Elems {
    volo[e] = volo[e] * (1.0 + 0.000001 * e);
  }
}

proc LagrangeLeapFrog() {
  LagrangeNodal();
  LagrangeElements();
}

proc main() {
  initMesh();
  var t0 = getCurrentTime();
  for step in 1..maxSteps {
    LagrangeLeapFrog();
  }
  var t1 = getCurrentTime();
  writeln("checksum", fx[0][0] + x[0][0] + volo[numElems - 1]);
  writeln("elapsed", t1 - t0);
}
"""


def build_source(variant: LuleshVariant | None = None) -> str:
    v = variant or ORIGINAL
    parts = [_PRELUDE]
    if v.vg:
        parts.append(_VG_GLOBALS)
    parts.append(_INIT)
    parts.append(_CENN_OPTIMIZED if v.cenn else _CENN_ORIGINAL)
    parts.append(_ELEM_VOLUME)
    parts.append(_INTEGRATE_STRESS)
    parts.append(_ELEM_FB)
    parts.append(_fb_hourglass(v))
    parts.append(_hourglass_control(v.vg))
    parts.append(_volume_force(v.vg))
    parts.append(_TAIL)
    return "\n".join(parts)


def config_for(
    edge_elems: int | None = None, max_steps: int | None = None
) -> dict[str, object]:
    cfg = dict(DEFAULT_CONFIG)
    if edge_elems is not None:
        cfg["edgeElems"] = edge_elems
    if max_steps is not None:
        cfg["maxSteps"] = max_steps
    return cfg
