"""Fault-plan description: what to break, how often, under which seed.

A :class:`FaultPlan` is a frozen, fully deterministic recipe.  The same
plan applied to the same sample stream always injects the same faults
(the injector derives every decision from ``seed``), so degraded runs
are as reproducible as clean ones — a property the stability benches
and the CI smoke step rely on.

Fault classes (mirroring how real telemetry degrades):

``drop``      sample loss — the overflow fired but the record vanished.
``corrupt``   payload corruption — bad ``leaf_iid`` or garbage frame
              addresses (bit flips, torn writes).
``truncate``  stack-walk truncation at depth *k* — the walker gave up
              before reaching the root.
``tagloss``   spawn-tag loss — the tasking-layer breadcrumb needed for
              pre/post-spawn gluing is gone.
``strip``     debug-info stripping — a fraction of functions resolve to
              raw addresses only.
``crash``     locale crash — a locale's run dies (multi-locale only).
``straggle``  locale straggler — a locale finishes late (multi-locale).

Transport faults (the worker-pool seam, supervised by
:mod:`repro.pipeline.supervisor`):

``worker-crash``    the worker running the task raises (dies cleanly);
                    first dispatch only — a retry succeeds.
``worker-kill``     the worker is SIGKILLed mid-task, taking the whole
                    process pool down (``BrokenProcessPool``); first
                    dispatch only.
``worker-hang``     the task stalls ``hang-seconds`` before finishing —
                    trips the per-task timeout / speculation.
``worker-dead``     the task fails on *every* dispatch — the graceful-
                    degradation path (retries cannot save the shard).
``payload-corrupt`` the result payload is corrupted in flight (CRC
                    mismatch on the parent side).
``init-pickle-fail`` the first N pool builds fail as if the worker
                    initializer blob would not pickle (transient).

CLI spec grammar (``--inject-faults``)::

    drop=0.1,truncate=0.1:3,tagloss=0.05,corrupt=0.02,strip=0.1,seed=42
    crash=1;3,straggle=2,straggle-delay=0.05,crash-rate=0.2
    worker-crash=2;5,worker-hang=3,payload-corrupt-rate=0.1
    worker-kill=0,worker-dead=1,hang-seconds=0.2,init-pickle-fail=1

Rates are fractions in [0, 1]; ``truncate`` takes an optional ``:k``
depth (default 2); ``crash``/``straggle`` take ``;``-separated locale
ids; ``worker-crash``/``worker-kill``/``worker-hang``/``worker-dead``/
``payload-corrupt`` take ``;``-separated task (shard) indices, with
``worker-crash-rate``/``worker-hang-rate``/``payload-corrupt-rate``
per-dispatch probabilistic variants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..errors import SampleFormatError

#: The per-sample fault classes a plan can sweep (locale faults are
#: orchestrated by the multi-locale harness, not per sample).
FAULT_CLASSES = ("drop", "corrupt", "truncate", "tagloss", "strip")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault-injection recipe."""

    seed: int = 0
    #: Per-sample fault rates, each in [0, 1].
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    truncate_depth: int = 2
    tag_loss_rate: float = 0.0
    #: Fraction of user functions whose debug info is stripped.
    strip_rate: float = 0.0
    #: Locales that always crash (every attempt).
    crash_locales: tuple[int, ...] = ()
    #: Per-attempt crash probability for every locale (retries can
    #: succeed, unlike ``crash_locales``).
    crash_rate: float = 0.0
    #: Locales that straggle (finish after ``straggler_delay`` host s).
    straggler_locales: tuple[int, ...] = ()
    straggler_delay: float = 0.0
    # -- transport faults (the worker-pool seam) --------------------------
    #: Tasks whose worker raises on the first dispatch (retries succeed).
    worker_crash_tasks: tuple[int, ...] = ()
    #: Per-dispatch worker-crash probability for every task.
    worker_crash_rate: float = 0.0
    #: Tasks whose worker is SIGKILLed on the first dispatch
    #: (``BrokenProcessPool`` on a real process pool).
    worker_kill_tasks: tuple[int, ...] = ()
    #: Tasks that stall ``hang_seconds`` on the first dispatch.
    worker_hang_tasks: tuple[int, ...] = ()
    #: Per-dispatch hang probability for every task.
    worker_hang_rate: float = 0.0
    #: How long a hung task stalls before finishing (host seconds).
    hang_seconds: float = 30.0
    #: Tasks whose result payload is corrupted on the first dispatch.
    payload_corrupt_tasks: tuple[int, ...] = ()
    #: Per-dispatch payload-corruption probability for every task.
    payload_corrupt_rate: float = 0.0
    #: Tasks that fail on EVERY dispatch (degradation path).
    worker_dead_tasks: tuple[int, ...] = ()
    #: Number of leading pool builds that fail transiently, as if the
    #: worker-initializer blob refused to pickle.
    init_pickle_failures: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "truncate_rate",
                     "tag_loss_rate", "strip_rate", "crash_rate",
                     "worker_crash_rate", "worker_hang_rate",
                     "payload_corrupt_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise SampleFormatError(f"{name} must be in [0, 1], got {v}")
        if self.truncate_depth < 1:
            raise SampleFormatError("truncate_depth must be >= 1")
        if self.hang_seconds < 0.0:
            raise SampleFormatError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )
        if self.init_pickle_failures < 0:
            raise SampleFormatError(
                f"init_pickle_failures must be >= 0, "
                f"got {self.init_pickle_failures}"
            )

    @property
    def is_clean(self) -> bool:
        """True when the plan injects nothing at the sample level."""
        return (
            self.drop_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.truncate_rate == 0.0
            and self.tag_loss_rate == 0.0
            and self.strip_rate == 0.0
        )

    @property
    def has_transport_faults(self) -> bool:
        """True when the plan injects anything at the worker-pool seam
        (orthogonal to :attr:`is_clean`, which is sample-level only)."""
        return bool(
            self.worker_crash_tasks
            or self.worker_crash_rate
            or self.worker_kill_tasks
            or self.worker_hang_tasks
            or self.worker_hang_rate
            or self.payload_corrupt_tasks
            or self.payload_corrupt_rate
            or self.worker_dead_tasks
            or self.init_pickle_failures
        )

    @property
    def has_payload_faults(self) -> bool:
        """True when result payloads can be corrupted in flight — the
        supervisor only pays for the CRC result envelope when this is
        set, keeping the clean path overhead-free."""
        return bool(self.payload_corrupt_tasks or self.payload_corrupt_rate)

    def with_rate(self, fault: str, rate: float) -> "FaultPlan":
        """Returns a copy with one fault class set to ``rate`` (used by
        the stability sweep to isolate classes)."""
        field = {
            "drop": "drop_rate",
            "corrupt": "corrupt_rate",
            "truncate": "truncate_rate",
            "tagloss": "tag_loss_rate",
            "strip": "strip_rate",
        }.get(fault)
        if field is None:
            raise SampleFormatError(f"unknown fault class {fault!r}")
        return replace(self, **{field: rate})

    def for_locale(self, locale_id: int) -> "FaultPlan":
        """Derives a per-locale plan: same rates, decorrelated seed, so
        every locale degrades independently but reproducibly."""
        return replace(self, seed=self.seed * 1000003 + locale_id * 7919)

    # -- locale-level decisions (used by the multi-locale harness) ----------

    def should_crash(self, locale_id: int, attempt: int) -> bool:
        if locale_id in self.crash_locales:
            return True
        if self.crash_rate <= 0.0:
            return False
        rng = random.Random(f"{self.seed}:crash:{locale_id}:{attempt}")
        return rng.random() < self.crash_rate

    def straggle_seconds(self, locale_id: int) -> float:
        if locale_id in self.straggler_locales:
            return self.straggler_delay
        return 0.0

    # -- CLI spec -----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parses the ``--inject-faults`` spec grammar (see module doc)."""
        kwargs: dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise SampleFormatError(
                    f"bad fault spec item {item!r} (want name=value)"
                )
            name, raw = item.split("=", 1)
            name = name.strip().lower()
            raw = raw.strip()
            try:
                if name == "seed":
                    kwargs["seed"] = int(raw)
                elif name == "drop":
                    kwargs["drop_rate"] = float(raw)
                elif name == "corrupt":
                    kwargs["corrupt_rate"] = float(raw)
                elif name == "truncate":
                    rate, _, depth = raw.partition(":")
                    kwargs["truncate_rate"] = float(rate)
                    if depth:
                        kwargs["truncate_depth"] = int(depth)
                elif name == "tagloss":
                    kwargs["tag_loss_rate"] = float(raw)
                elif name == "strip":
                    kwargs["strip_rate"] = float(raw)
                elif name == "crash":
                    kwargs["crash_locales"] = tuple(
                        int(x) for x in raw.split(";") if x
                    )
                elif name == "crash-rate":
                    kwargs["crash_rate"] = float(raw)
                elif name == "straggle":
                    kwargs["straggler_locales"] = tuple(
                        int(x) for x in raw.split(";") if x
                    )
                elif name == "straggle-delay":
                    kwargs["straggler_delay"] = float(raw)
                elif name == "worker-crash":
                    kwargs["worker_crash_tasks"] = tuple(
                        int(x) for x in raw.split(";") if x
                    )
                elif name == "worker-crash-rate":
                    kwargs["worker_crash_rate"] = float(raw)
                elif name == "worker-kill":
                    kwargs["worker_kill_tasks"] = tuple(
                        int(x) for x in raw.split(";") if x
                    )
                elif name == "worker-hang":
                    kwargs["worker_hang_tasks"] = tuple(
                        int(x) for x in raw.split(";") if x
                    )
                elif name == "worker-hang-rate":
                    kwargs["worker_hang_rate"] = float(raw)
                elif name == "hang-seconds":
                    kwargs["hang_seconds"] = float(raw)
                elif name == "payload-corrupt":
                    kwargs["payload_corrupt_tasks"] = tuple(
                        int(x) for x in raw.split(";") if x
                    )
                elif name == "payload-corrupt-rate":
                    kwargs["payload_corrupt_rate"] = float(raw)
                elif name == "worker-dead":
                    kwargs["worker_dead_tasks"] = tuple(
                        int(x) for x in raw.split(";") if x
                    )
                elif name == "init-pickle-fail":
                    kwargs["init_pickle_failures"] = int(raw)
                else:
                    raise SampleFormatError(
                        f"unknown fault spec key {name!r} "
                        f"(want {'|'.join(FAULT_CLASSES)}|crash|crash-rate|"
                        f"straggle|straggle-delay|worker-crash[-rate]|"
                        f"worker-kill|worker-hang[-rate]|hang-seconds|"
                        f"payload-corrupt[-rate]|worker-dead|"
                        f"init-pickle-fail|seed)"
                    )
            except ValueError as exc:
                if isinstance(exc, SampleFormatError):
                    raise
                raise SampleFormatError(
                    f"bad value in fault spec item {item!r}: {exc}"
                ) from exc
        return cls(**kwargs)  # type: ignore[arg-type]
