"""CFG, dominator/post-dominator, and control-dependence tests —
including a hypothesis property suite over random CFGs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chapel.tokens import SourceLocation
from repro.chapel.types import BOOL, INT, VOID
from repro.ir import CFG, Constant, Function, IRBuilder, control_dependence, dominator_tree, postdominator_tree
from repro.ir import instructions as I

LOC = SourceLocation("t.chpl", 1, 1)


def diamond():
    """entry → (then|else) → merge(ret)."""
    fn = Function("d", [], VOID, LOC)
    b = IRBuilder(fn)
    entry = b.new_block("entry")
    then_b = b.new_block("then")
    else_b = b.new_block("else")
    merge = b.new_block("merge")
    b.set_block(entry)
    b.cbr(LOC, Constant(BOOL, True), then_b, else_b)
    b.set_block(then_b)
    b.br(LOC, merge)
    b.set_block(else_b)
    b.br(LOC, merge)
    b.set_block(merge)
    b.ret(LOC)
    return fn, entry, then_b, else_b, merge


def loop_fn():
    """entry → header ⇄ body; header → exit."""
    fn = Function("l", [], VOID, LOC)
    b = IRBuilder(fn)
    entry = b.new_block("entry")
    header = b.new_block("header")
    body = b.new_block("body")
    exit_b = b.new_block("exit")
    b.set_block(entry)
    b.br(LOC, header)
    b.set_block(header)
    b.cbr(LOC, Constant(BOOL, True), body, exit_b)
    b.set_block(body)
    b.br(LOC, header)
    b.set_block(exit_b)
    b.ret(LOC)
    return fn, entry, header, body, exit_b


class TestCFG:
    def test_preds_and_succs(self):
        fn, entry, then_b, else_b, merge = diamond()
        cfg = CFG(fn)
        assert set(cfg.succs[entry]) == {then_b, else_b}
        assert set(cfg.preds[merge]) == {then_b, else_b}

    def test_reverse_postorder_starts_at_entry(self):
        fn, entry, *_ = diamond()
        rpo = CFG(fn).reverse_postorder()
        assert rpo[0] is entry
        assert len(rpo) == 4

    def test_reachability_excludes_orphans(self):
        fn, *_ = diamond()
        orphan = fn.add_block(type(fn.entry)("orphan"))
        b = IRBuilder(fn)
        b.set_block(orphan)
        b.ret(LOC)
        cfg = CFG(fn)
        assert orphan not in cfg.reachable()

    def test_exit_blocks(self):
        fn, *_, merge = diamond()
        assert CFG(fn).exit_blocks() == [merge]


class TestDominators:
    def test_diamond(self):
        fn, entry, then_b, else_b, merge = diamond()
        dt = dominator_tree(CFG(fn))
        assert dt.idom[merge] is entry
        assert dt.dominates(entry, merge)
        assert not dt.dominates(then_b, merge)
        assert dt.dominates(merge, merge)  # reflexive

    def test_loop(self):
        fn, entry, header, body, exit_b = loop_fn()
        dt = dominator_tree(CFG(fn))
        assert dt.idom[body] is header
        assert dt.idom[exit_b] is header
        assert dt.dominates(header, body)

    def test_postdominators_diamond(self):
        fn, entry, then_b, else_b, merge = diamond()
        pdt, vexit = postdominator_tree(CFG(fn))
        assert pdt.idom[entry] is merge
        assert pdt.idom[then_b] is merge


class TestControlDependence:
    def test_diamond_branches_depend_on_entry(self):
        fn, entry, then_b, else_b, merge = diamond()
        deps = control_dependence(CFG(fn))
        assert deps[then_b] == {entry}
        assert deps[else_b] == {entry}
        assert deps[merge] == set()

    def test_loop_body_depends_on_header(self):
        fn, entry, header, body, exit_b = loop_fn()
        deps = control_dependence(CFG(fn))
        assert header in deps[body]
        # the loop header controls its own re-execution
        assert header in deps[header]
        assert deps[exit_b] == set()


# ---------------------------------------------------------------------------
# Property-based: random structured CFGs
# ---------------------------------------------------------------------------


def random_cfg(edge_choices: list[int], n_blocks: int) -> Function:
    """Builds a function with n_blocks, each ending in a cbr/br whose
    targets come from edge_choices (indices mod n_blocks). Last block
    rets."""
    fn = Function("rnd", [], VOID, LOC)
    b = IRBuilder(fn)
    blocks = [b.new_block(f"b{i}") for i in range(n_blocks)]
    it = iter(edge_choices)
    for i, blk in enumerate(blocks):
        b.set_block(blk)
        if i == n_blocks - 1:
            b.ret(LOC)
            continue
        t1 = blocks[next(it) % n_blocks]
        t2 = blocks[next(it) % n_blocks]
        b.cbr(LOC, Constant(BOOL, True), t1, t2)
    return fn


@given(
    st.integers(min_value=2, max_value=8).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.integers(min_value=0, max_value=7),
                min_size=2 * n,
                max_size=2 * n,
            ),
        )
    )
)
@settings(max_examples=60, deadline=None)
def test_dominator_properties(data):
    n, edges = data
    fn = random_cfg(edges, n)
    cfg = CFG(fn)
    dt = dominator_tree(cfg)
    reachable = cfg.reachable()

    # Entry dominates every reachable block.
    for blk in reachable:
        assert dt.dominates(cfg.entry, blk)

    # idom(b) is a strict dominator of b and is reachable.
    for blk in reachable:
        if blk is cfg.entry:
            continue
        idom = dt.idom.get(blk)
        assert idom in reachable
        assert dt.dominates(idom, blk)

    # Every non-entry reachable block's predecessors that are reachable:
    # a block dominates its successor unless the successor has another
    # path — weaker sanity: domination is antisymmetric.
    for a in reachable:
        for b2 in reachable:
            if a is not b2 and dt.dominates(a, b2):
                assert not dt.dominates(b2, a)


@given(
    st.integers(min_value=2, max_value=8).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.integers(min_value=0, max_value=7),
                min_size=2 * n,
                max_size=2 * n,
            ),
        )
    )
)
@settings(max_examples=60, deadline=None)
def test_control_dependence_sources_are_branches(data):
    n, edges = data
    fn = random_cfg(edges, n)
    cfg = CFG(fn)
    deps = control_dependence(cfg)
    for blk, controllers in deps.items():
        for c in controllers:
            # only multi-successor blocks can control anything
            assert len(cfg.succs[c]) >= 2
