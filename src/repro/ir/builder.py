"""IRBuilder: convenience layer for emitting instructions.

Tracks an insertion block and threads source locations so every emitted
instruction lands with correct debug info (the property the blame
pipeline depends on).
"""

from __future__ import annotations

from ..chapel.tokens import SourceLocation
from ..chapel.types import BOOL, INT, RANGE, DomainType, Type
from . import instructions as ins
from .module import BasicBlock, Function


class IRBuilder:
    """Emits instructions into a current :class:`BasicBlock`."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.block: BasicBlock | None = None

    # -- Block management ----------------------------------------------------

    def new_block(self, label: str | None = None) -> BasicBlock:
        return self.function.add_block(BasicBlock(label))

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, instr: ins.Instruction) -> ins.Instruction:
        assert self.block is not None, "no insertion block set"
        if self.block.terminator is not None:
            # Dead code after a terminator: emit into a fresh unreachable
            # block so the IR stays well-formed (e.g. code after return).
            self.block = self.new_block("dead")
        self.block.append(instr)
        return instr

    @property
    def terminated(self) -> bool:
        return self.block is not None and self.block.terminator is not None

    # -- Memory -----------------------------------------------------------------

    def alloca(
        self,
        loc: SourceLocation,
        ty: Type,
        name: str,
        is_temp: bool = False,
        formal_home: str | None = None,
    ) -> ins.Register:
        reg = ins.Register(ty, hint=f"addr_{name}")
        self._emit(
            ins.Alloca(loc, reg, ty, name, is_temp=is_temp, formal_home=formal_home)
        )
        return reg

    def load(self, loc: SourceLocation, addr: ins.Value, ty: Type) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.Load(loc, reg, addr))
        return reg

    def store(self, loc: SourceLocation, value: ins.Value, addr: ins.Value) -> None:
        self._emit(ins.Store(loc, value, addr))

    def field_addr(
        self, loc: SourceLocation, base: ins.Value, index: int, name: str, ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.FieldAddr(loc, reg, base, index, name))
        return reg

    def elem_addr(
        self, loc: SourceLocation, base: ins.Value, indices: list[ins.Value], ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.ElemAddr(loc, reg, base, indices))
        return reg

    def tuple_elem_addr(
        self, loc: SourceLocation, base: ins.Value, index: ins.Value, ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.TupleElemAddr(loc, reg, base, index))
        return reg

    # -- Scalar ops ----------------------------------------------------------------

    def binop(
        self, loc: SourceLocation, op: str, lhs: ins.Value, rhs: ins.Value, ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.BinOp(loc, reg, op, lhs, rhs))
        return reg

    def unop(self, loc: SourceLocation, op: str, operand: ins.Value, ty: Type) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.UnOp(loc, reg, op, operand))
        return reg

    def cast(self, loc: SourceLocation, value: ins.Value, ty: Type) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.Cast(loc, reg, value))
        return reg

    # -- Calls / control flow ----------------------------------------------------

    def call(
        self,
        loc: SourceLocation,
        callee: str,
        args: list[ins.Value],
        return_type: Type,
        is_builtin: bool = False,
    ) -> ins.Register | None:
        from ..chapel.types import VoidType

        result = None if isinstance(return_type, VoidType) else ins.Register(return_type)
        self._emit(ins.Call(loc, result, callee, args, is_builtin=is_builtin))
        return result

    def ret(self, loc: SourceLocation, value: ins.Value | None = None) -> None:
        self._emit(ins.Ret(loc, value))

    def br(self, loc: SourceLocation, target: BasicBlock) -> None:
        self._emit(ins.Br(loc, target))

    def cbr(
        self,
        loc: SourceLocation,
        cond: ins.Value,
        then_block: BasicBlock,
        else_block: BasicBlock,
    ) -> None:
        self._emit(ins.CBr(loc, cond, then_block, else_block))

    # -- Runtime ops -----------------------------------------------------------

    def make_range(
        self,
        loc: SourceLocation,
        lo: ins.Value,
        hi: ins.Value,
        step: ins.Value | None = None,
        counted: bool = False,
    ) -> ins.Register:
        reg = ins.Register(RANGE)
        step = step or ins.Constant(INT, 1)
        self._emit(ins.MakeRange(loc, reg, lo, hi, step, counted=counted))
        return reg

    def make_domain(self, loc: SourceLocation, dims: list[ins.Value]) -> ins.Register:
        reg = ins.Register(DomainType(len(dims)))
        self._emit(ins.MakeDomain(loc, reg, dims))
        return reg

    def make_sparse_domain(
        self, loc: SourceLocation, parent: ins.Value, ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty, hint="spdom")
        self._emit(ins.MakeSparseDomain(loc, reg, parent))
        return reg

    def make_assoc_domain(self, loc: SourceLocation, ty: Type) -> ins.Register:
        reg = ins.Register(ty, hint="adom")
        self._emit(ins.MakeAssocDomain(loc, reg))
        return reg

    def make_array(
        self, loc: SourceLocation, domain: ins.Value, elem_type: Type, arr_type: Type
    ) -> ins.Register:
        reg = ins.Register(arr_type)
        self._emit(ins.MakeArray(loc, reg, domain, elem_type))
        return reg

    def array_slice(
        self, loc: SourceLocation, base: ins.Value, domain: ins.Value, ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.ArraySlice(loc, reg, base, domain))
        return reg

    def array_reindex(
        self, loc: SourceLocation, base: ins.Value, domain: ins.Value, ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.ArrayReindex(loc, reg, base, domain))
        return reg

    def domain_op(
        self,
        loc: SourceLocation,
        op: str,
        base: ins.Value,
        args: list[ins.Value],
        ty: Type,
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.DomainOp(loc, reg, op, base, args))
        return reg

    def make_tuple(
        self, loc: SourceLocation, elems: list[ins.Value], ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.MakeTuple(loc, reg, elems))
        return reg

    def tuple_get(
        self, loc: SourceLocation, tup: ins.Value, index: ins.Value, ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.TupleGet(loc, reg, tup, index))
        return reg

    def new_object(
        self, loc: SourceLocation, type_name: str, args: list[ins.Value], ty: Type
    ) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.NewObject(loc, reg, type_name, args))
        return reg

    def iter_init(
        self, loc: SourceLocation, iterable: ins.Value, zippered: bool
    ) -> ins.Register:
        reg = ins.Register(INT, hint="iter")
        self._emit(ins.IterInit(loc, reg, iterable, zippered))
        return reg

    def iter_next(self, loc: SourceLocation, state: ins.Value) -> ins.Register:
        reg = ins.Register(BOOL)
        self._emit(ins.IterNext(loc, reg, state))
        return reg

    def iter_value(self, loc: SourceLocation, state: ins.Value, ty: Type) -> ins.Register:
        reg = ins.Register(ty)
        self._emit(ins.IterValue(loc, reg, state))
        return reg

    def spawn_join(
        self,
        loc: SourceLocation,
        outlined: str,
        kind: str,
        iterables: list[ins.Value],
        captures: list[ins.Value],
    ) -> None:
        self._emit(ins.SpawnJoin(loc, outlined, kind, iterables, captures))
