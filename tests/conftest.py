"""Shared test helpers: compile/run/profile shortcuts with small,
deterministic settings."""

from __future__ import annotations

import pytest

from repro.compiler.lower import compile_source
from repro.runtime.interpreter import Interpreter, RunResult
from repro.sampling.monitor import Monitor
from repro.sampling.pmu import PMUConfig
from repro.tooling.profiler import ProfileResult, Profiler


def compile_src(source: str, filename: str = "test.chpl"):
    """Source → verified module."""
    return compile_source(source, filename)


def run_src(
    source: str,
    config: dict | None = None,
    num_threads: int = 4,
    filename: str = "test.chpl",
) -> RunResult:
    """Compile and execute; returns the RunResult."""
    module = compile_source(source, filename)
    return Interpreter(module, config=config, num_threads=num_threads).run()


def output_of(source: str, config: dict | None = None, num_threads: int = 4) -> list[str]:
    return run_src(source, config=config, num_threads=num_threads).output


def profile_src(
    source: str,
    config: dict | None = None,
    num_threads: int = 4,
    threshold: int = 997,
    filename: str = "test.chpl",
) -> ProfileResult:
    return Profiler(
        source,
        filename=filename,
        config=config,
        num_threads=num_threads,
        threshold=threshold,
    ).profile()


@pytest.fixture
def small_profile():
    """Factory fixture for profiling small programs."""
    return profile_src
