"""Typed exception hierarchy for the whole pipeline.

Every error the tool raises on purpose derives from :class:`ReproError`
so callers (the multi-locale harness, the CLIs, CI gates) can separate
"the measurement stack degraded" from genuine programming errors.

Several classes also subclass :class:`ValueError` because earlier
versions raised bare ``ValueError`` at the same sites — existing
``except ValueError`` callers keep working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised deliberately by the tool."""


class AnalysisError(ReproError, ValueError):
    """The static-analysis layer was misconfigured (e.g. two passes
    registered under the same name)."""


class AggregationError(ReproError, ValueError):
    """Cross-locale aggregation failed (no mergeable reports, bad
    locale count, all locales lost)."""


class SampleFormatError(ReproError, ValueError):
    """A sample record or dataset header is malformed or has an
    unsupported version."""


class DebugInfoError(ReproError):
    """An address could not be resolved against the debug info (strict
    resolution only — the tolerant pipeline buckets these instead)."""


class DatasetCorruptError(ReproError):
    """A journaled dataset failed checksum validation beyond its
    recoverable prefix (corrupt header, or strict-mode tail damage)."""


class ArtifactError(ReproError, ValueError):
    """A ``.cbp`` profile artifact is unreadable: bad magic, checksum
    mismatch (bit flip), truncation (missing footer), or a structurally
    invalid section."""


class ArtifactVersionError(ArtifactError):
    """The artifact's format version is not supported by this reader
    (the header is intact — the file comes from a different tool
    generation, not from corruption)."""


class ParallelError(ReproError, ValueError):
    """The parallel collection pipeline was misconfigured (bad worker
    count, unavailable pool backend, or an option that has no faithful
    sharded equivalent, like streaming mode with multiple workers)."""


class WorkerError(ParallelError):
    """Base for per-task transport failures in the supervised worker
    pool.  Instances cross the process boundary inside pool results, so
    the constructor takes only a message (picklable by default)."""


class WorkerCrashError(WorkerError):
    """A pool worker died (or was killed) while running a shard task —
    injected or real.  The supervisor retries the task on a live
    worker, rebuilding the pool first when the crash took the whole
    executor down (``BrokenProcessPool``)."""


class WorkerTimeoutError(WorkerError):
    """A shard task exceeded the per-task wall-clock budget.  With
    speculation enabled the supervisor races a second copy instead of
    charging a retry; otherwise the attempt is abandoned and retried."""


class PayloadCorruptError(WorkerError):
    """A shard task's result payload failed its integrity check on the
    way back from the worker (CRC mismatch or unpicklable bytes) — the
    transport analogue of a torn sample record.  The result is
    discarded and the task retried; the data is never trusted."""


class WorkerInitError(WorkerError):
    """Building the worker pool failed — most commonly the per-worker
    initializer blob would not pickle for the chosen backend.  Carries
    ``transient``: injected initializer faults are transient (a retry
    can succeed); a genuine :class:`pickle.PicklingError` is not."""

    def __init__(self, message: str, transient: bool = False) -> None:
        super().__init__(message)
        self.transient = transient


class LocaleError(ReproError):
    """Base for per-locale failures in the multi-locale harness."""

    def __init__(self, locale_id: int, message: str) -> None:
        super().__init__(message)
        self.locale_id = locale_id


class LocaleCrashError(LocaleError):
    """A locale's run crashed (injected or real)."""


class LocaleTimeoutError(LocaleError):
    """A locale exceeded the per-locale wall-clock budget."""
