"""The paper's §V.A workflow on MiniMD, end to end:

1. profile the original benchmark and read the data-centric view
   (paper Table II: Pos/Bins/RealPos/RealCount/Count/binSpace);
2. the blamed variables point at the zippered-iteration/domain-remapping
   loops; apply Johnson's rewrite (direct indexing);
3. time both versions, with and without --fast (paper Table III).

Run:  python examples/minimd_tuning.py
"""

from repro.bench import harness
from repro.bench.programs import minimd
from repro.views import render_data_centric


def main() -> None:
    print("=" * 72)
    print("Step 1 — profile the ORIGINAL MiniMD (zippered + remapped loops)")
    print("=" * 72)
    prof = harness.minimd_profile(optimized=False)
    print(render_data_centric(prof.report, top=10, min_blame=0.02))
    print()
    print(
        "The most-blamed variables (Pos, Bins and their aliasing views)\n"
        "lead straight to the forall loops that slice and zip the global\n"
        "arrays on every iteration — the paper's optimization target."
    )

    print()
    print("=" * 72)
    print("Step 2 — original vs optimized timing (paper Table III)")
    print("=" * 72)
    result = harness.minimd_speedups()
    print(harness.render_speedup_table(result))
    print("(paper: 2.26x w/o --fast, 2.56x w/ --fast)")

    print()
    print("=" * 72)
    print("Step 3 — profile the OPTIMIZED version: blame shifts")
    print("=" * 72)
    prof_opt = harness.minimd_profile(optimized=True)
    print(render_data_centric(prof_opt.report, top=10, min_blame=0.02))
    for name in ("Pos", "Bins"):
        before = prof.report.blame_of(name)
        after = prof_opt.report.blame_of(name)
        print(f"  {name}: {100*before:.1f}% -> {100*after:.1f}%")


if __name__ == "__main__":
    main()
