"""FaultPlan: spec grammar, validation, determinism."""

import pytest

from repro.errors import ReproError, SampleFormatError
from repro.resilience.faults import FAULT_CLASSES, FaultPlan


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "drop=0.1,truncate=0.2:3,tagloss=0.05,corrupt=0.02,"
            "strip=0.15,seed=42,crash=1;3,crash-rate=0.2,"
            "straggle=2,straggle-delay=0.05"
        )
        assert plan.seed == 42
        assert plan.drop_rate == 0.1
        assert plan.truncate_rate == 0.2
        assert plan.truncate_depth == 3
        assert plan.tag_loss_rate == 0.05
        assert plan.corrupt_rate == 0.02
        assert plan.strip_rate == 0.15
        assert plan.crash_locales == (1, 3)
        assert plan.crash_rate == 0.2
        assert plan.straggler_locales == (2,)
        assert plan.straggler_delay == 0.05

    def test_truncate_default_depth(self):
        assert FaultPlan.parse("truncate=0.5").truncate_depth == 2

    def test_empty_spec_is_clean(self):
        assert FaultPlan.parse("").is_clean

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" drop = 0.1 , seed = 9 ")
        assert plan.drop_rate == 0.1 and plan.seed == 9

    @pytest.mark.parametrize(
        "bad",
        ["drop", "drop=abc", "nosuch=0.1", "drop=1.5", "truncate=0.1:0"],
    )
    def test_bad_specs_raise_typed(self, bad):
        with pytest.raises(SampleFormatError):
            FaultPlan.parse(bad)
        with pytest.raises(ReproError):
            FaultPlan.parse(bad)


class TestPlan:
    def test_rates_validated_on_construction(self):
        with pytest.raises(SampleFormatError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(SampleFormatError):
            FaultPlan(strip_rate=2.0)

    def test_is_clean_ignores_locale_faults(self):
        # Locale crash/straggle are orchestrated by the harness, not
        # per sample — a plan with only those injects nothing into the
        # stream.
        assert FaultPlan(crash_locales=(1,), straggler_locales=(0,)).is_clean
        assert not FaultPlan(drop_rate=0.01).is_clean

    def test_with_rate_covers_every_class(self):
        for fault in FAULT_CLASSES:
            plan = FaultPlan().with_rate(fault, 0.25)
            assert not plan.is_clean

    def test_with_rate_unknown_class(self):
        with pytest.raises(SampleFormatError):
            FaultPlan().with_rate("meteor", 0.1)

    def test_for_locale_decorrelates_seeds(self):
        base = FaultPlan(seed=3, drop_rate=0.1)
        a, b = base.for_locale(0), base.for_locale(1)
        assert a.seed != b.seed
        assert a.drop_rate == b.drop_rate == 0.1

    def test_should_crash_deterministic(self):
        plan = FaultPlan(seed=11, crash_rate=0.5)
        decisions = [plan.should_crash(i, a) for i in range(8) for a in range(3)]
        again = [plan.should_crash(i, a) for i in range(8) for a in range(3)]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_crash_locales_always_crash(self):
        plan = FaultPlan(crash_locales=(2,))
        assert plan.should_crash(2, 0) and plan.should_crash(2, 5)
        assert not plan.should_crash(1, 0)

    def test_straggle_seconds(self):
        plan = FaultPlan(straggler_locales=(1,), straggler_delay=0.25)
        assert plan.straggle_seconds(1) == 0.25
        assert plan.straggle_seconds(0) == 0.0
