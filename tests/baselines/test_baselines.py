"""Comparator baseline tests: pprof-style (Fig. 4) and the
HPCToolkit-style unknown-data attribution (§II.B)."""

import pytest

from repro.baselines.hpctk import HpctkAttributor, TRACKING_THRESHOLD_BYTES
from repro.baselines.pprof import build_pprof_profile, render_pprof

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import profile_src

PAR = """
var A: [0..49] real;
proc kernel() {
  forall i in 0..49 { A[i] = sqrt(i * 1.0) + i * 0.25; }
}
proc main() { kernel(); }
"""


class TestPprof:
    @pytest.fixture(scope="class")
    def res(self):
        return profile_src(PAR, threshold=211, num_threads=12)

    def test_shows_raw_outlined_names(self, res):
        """The pprof baseline does NOT glue stacks: compiler-generated
        forall_fn frames appear verbatim — the paper's Fig. 4 confusion."""
        rows = build_pprof_profile(res.monitor.samples)
        names = {r.function for r in rows}
        assert any(n.startswith("forall_fn_chpl") for n in names)

    def test_sched_yield_present_with_many_threads(self, res):
        rows = build_pprof_profile(res.monitor.samples)
        names = {r.function for r in rows}
        assert "__sched_yield" in names

    def test_flat_totals_match_sample_count(self, res):
        rows = build_pprof_profile(res.monitor.samples)
        assert sum(r.flat for r in rows) == res.monitor.n_samples

    def test_render_format(self, res):
        out = render_pprof(res.monitor.samples, binary_name="lulesh")
        lines = out.splitlines()
        assert lines[0] == "Using local file ./lulesh."
        assert lines[2].startswith("Total:")
        # pprof's six columns on data rows
        parts = lines[3].split()
        assert parts[1].endswith("%") and parts[2].endswith("%")

    def test_sorted_by_flat(self, res):
        rows = build_pprof_profile(res.monitor.samples)
        flats = [r.flat for r in rows]
        assert flats == sorted(flats, reverse=True)


class TestHpctk:
    def test_direct_global_array_attributed(self):
        # Big, plainly-indexed global array → attributable samples.
        src = """
var BIG: [0..2999] real;
proc main() {
  for t in 1..3 {
    forall i in 0..2999 { BIG[i] = BIG[i] + 1.0; }
  }
}
"""
        res = profile_src(src, threshold=499)
        att = HpctkAttributor(res.module, res.interpreter)
        out = att.attribute(res.monitor.samples)
        assert out.fraction_of("BIG") > 0.1
        assert out.unknown_fraction < 0.9

    def test_small_arrays_untracked(self):
        # 50 reals = 400 bytes < 4 KB threshold → unknown.
        src = """
var SMALL: [0..49] real;
proc main() {
  for t in 1..20 {
    forall i in 0..49 { SMALL[i] = SMALL[i] + 1.0; }
  }
}
"""
        res = profile_src(src, threshold=499)
        att = HpctkAttributor(res.module, res.interpreter)
        out = att.attribute(res.monitor.samples)
        assert out.fraction_of("SMALL") == 0.0
        assert out.unknown_fraction == 1.0

    def test_locals_always_unknown(self):
        src = """
proc main() {
  var acc = 0.0;
  for i in 1..900 { acc += i * 1.0; }
  writeln(acc);
}
"""
        res = profile_src(src, threshold=211)
        att = HpctkAttributor(res.module, res.interpreter)
        out = att.attribute(res.monitor.samples)
        assert out.unknown_fraction == 1.0

    def test_class_field_chains_unknown(self):
        # Nested class access loses the allocation identity (the
        # paper's CLOMP 96.88% unknown).
        src = """
record Zone { var value: real; }
class Part { var zoneArray: [?] Zone; }
var parts: [0..511] Part;
proc main() {
  for i in 0..511 {
    var z: [0..3] Zone;
    parts[i] = new Part(z);
  }
  for t in 1..3 {
    forall i in 0..511 {
      for j in 0..3 {
        parts[i].zoneArray[j].value = parts[i].zoneArray[j].value + 1.0;
      }
    }
  }
}
"""
        res = profile_src(src, threshold=499)
        att = HpctkAttributor(res.module, res.interpreter)
        out = att.attribute(res.monitor.samples)
        # partArray itself is 512*8 = 4KB — borderline; the zone chains
        # must be unknown regardless.
        assert out.unknown_fraction > 0.9

    def test_threshold_constant(self):
        assert TRACKING_THRESHOLD_BYTES == 4096
