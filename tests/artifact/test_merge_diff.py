"""Merging and diffing snapshots/artifacts."""

from __future__ import annotations

import dataclasses

import pytest

from repro.artifact import (
    diff_snapshots,
    merge_snapshots,
    read_artifact,
    render_blame_diff,
    snapshot_from_result,
    write_artifact,
)
from repro.errors import ArtifactError
from repro.pipeline import render_stage
from repro.tooling.profiler import Profiler

from .conftest import benchmark_setup, profile_benchmark


def snap(locale_id=0, sha="a" * 64):
    result = profile_benchmark("minimd")
    return snapshot_from_result(
        result, source_sha256=sha, locale_id=locale_id
    )


class TestMerge:
    def test_single_snapshot_is_the_identity(self):
        s = snap()
        assert merge_snapshots([s]) is s

    def test_single_with_missing_locales_is_not_identity(self):
        s = snap()
        merged = merge_snapshots([s], missing_locales=(1,))
        assert merged is not s
        assert merged.report.missing_locales == (1,)

    def test_empty_merge_refused(self):
        with pytest.raises(ArtifactError, match="no artifacts"):
            merge_snapshots([])

    def test_two_locales_sum(self):
        a, b = snap(locale_id=0), snap(locale_id=1)
        merged = merge_snapshots([a, b], program="minimd.chpl")
        assert merged.meta.kind == "merged"
        assert merged.meta.locale_id == -1
        assert (
            merged.report.stats.user_samples
            == a.report.stats.user_samples + b.report.stats.user_samples
        )
        assert merged.postmortem.n_raw == a.postmortem.n_raw * 2
        assert len(merged.postmortem.instances) == 2 * len(
            a.postmortem.instances
        )

    def test_mixed_sources_refused(self):
        a = snap(sha="a" * 64)
        b = snap(locale_id=1, sha="b" * 64)
        with pytest.raises(ArtifactError, match="different sources"):
            merge_snapshots([a, b])

    def test_merged_artifact_round_trips(self, tmp_path):
        merged = merge_snapshots(
            [snap(0), snap(1)], program="minimd.chpl", missing_locales=(2,)
        )
        path = tmp_path / "merged.cbp"
        write_artifact(str(path), merged)
        loaded = read_artifact(str(path))
        assert loaded.meta.kind == "merged"
        assert loaded.report.missing_locales == (2,)
        for view in ("data", "code", "hybrid"):
            assert render_stage(loaded, view) == render_stage(merged, view)

    def test_fault_stats_sum(self):
        a, b = snap(0), snap(1)
        fs = {
            "examined": 10, "dropped": 1, "corrupted": 2, "truncated": 3,
            "tags_lost": 0, "stripped": 1, "stripped_functions": ["f"],
        }
        a = dataclasses.replace(a, fault_stats=dict(fs))
        b = dataclasses.replace(
            b, fault_stats={**fs, "stripped_functions": ["g"]}
        )
        merged = merge_snapshots([a, b])
        assert merged.fault_stats["examined"] == 20
        assert merged.fault_stats["truncated"] == 6
        assert merged.fault_stats["stripped_functions"] == ["f", "g"]

    def test_fault_stats_preserve_unknown_counters(self):
        """Counters outside the known set (newer injector modes) must be
        summed, not silently dropped; non-numeric values and bools have
        no meaningful sum and are dropped."""
        a, b = snap(0), snap(1)
        a = dataclasses.replace(
            a,
            fault_stats={
                "examined": 5, "jitter": 3, "enabled": True, "note": "x",
            },
        )
        b = dataclasses.replace(
            b, fault_stats={"examined": 7, "jitter": 4, "skew": 1.5}
        )
        merged = merge_snapshots([a, b])
        assert merged.fault_stats["examined"] == 12
        assert merged.fault_stats["jitter"] == 7
        assert merged.fault_stats["skew"] == 1.5
        assert "enabled" not in merged.fault_stats
        assert "note" not in merged.fault_stats
        # Known counters lead in stable order even when absent from the
        # inputs; unknown ones follow in first-seen order.
        keys = list(merged.fault_stats)
        assert keys[:6] == [
            "examined", "dropped", "corrupted", "truncated", "tags_lost",
            "stripped",
        ]
        assert keys.index("jitter") < keys.index("skew")

    def test_missing_locales_deduped_and_sorted(self):
        a, b = snap(0), snap(1)
        merged = merge_snapshots([a, b], missing_locales=(3, 2, 3, 2))
        assert merged.report.missing_locales == (2, 3)

    def test_missing_locales_union_with_premerged_inputs(self):
        """An input that is itself a merge already carries coverage
        gaps; re-merging unions them with the caller's instead of
        losing or duplicating them."""
        inner = merge_snapshots(
            [snap(0), snap(1)], program="minimd.chpl", missing_locales=(4,)
        )
        outer = merge_snapshots(
            [inner, snap(2)], program="minimd.chpl", missing_locales=(4, 5)
        )
        assert outer.report.missing_locales == (4, 5)

    def test_empty_merge_message_dedupes_missing(self):
        with pytest.raises(ArtifactError, match=r"\[1, 2\]"):
            merge_snapshots([], missing_locales=(2, 1, 2))

    def test_matches_multilocale_harness(self, tmp_path):
        """`repro merge` over the per-locale shards reproduces the
        in-process multi-locale merged report."""
        from repro.tooling.multilocale import profile_locales

        source = """
config const localeId = 0;
config const numLocales = 1;
config const n = 90;
var A: [0..#n] real;
forall i in 0..#n {
  if i % numLocales == localeId {
    A[i] = i * 1.5;
  }
}
"""
        res = profile_locales(
            source,
            2,
            filename="sharded.chpl",
            num_threads=2,
            threshold=997,
            artifact_dir=str(tmp_path),
        )
        shards = [
            read_artifact(str(tmp_path / f"locale{i}.cbp")) for i in range(2)
        ]
        offline = merge_snapshots(shards, program="sharded.chpl")
        assert render_stage(offline, "data") == render_stage(
            res.merged_snapshot, "data"
        )
        ondisk = read_artifact(str(tmp_path / "merged.cbp"))
        assert render_stage(ondisk, "data") == render_stage(offline, "data")


class TestDiff:
    @pytest.fixture(scope="class")
    def pair(self):
        source, filename, config = benchmark_setup("minimd")
        from repro.bench.programs import minimd

        original = profile_benchmark("minimd")
        optimized = Profiler(
            minimd.build_source(optimized=True),
            filename=filename,
            config=config,
            num_threads=4,
            threshold=4999,
        ).profile()
        return (
            snapshot_from_result(original),
            snapshot_from_result(optimized),
        )

    def test_rows_sorted_by_shift_magnitude(self, pair):
        rows = diff_snapshots(*pair)
        assert rows, "expected at least one differing variable"
        deltas = [abs(r.delta) for r in rows]
        assert deltas == sorted(deltas, reverse=True)

    def test_optimization_moves_blame_down(self, pair):
        rows = diff_snapshots(*pair)
        assert rows[0].delta < 0  # the hottest shift is an improvement

    def test_min_delta_filters(self, pair):
        all_rows = diff_snapshots(*pair)
        some = diff_snapshots(*pair, min_delta=0.10)
        assert len(some) < len(all_rows)
        assert all(abs(r.delta) >= 0.10 for r in some)

    def test_self_diff_is_empty_above_zero(self, pair):
        a, _ = pair
        assert diff_snapshots(a, a, min_delta=1e-12) == []

    def test_render_shape(self, pair):
        rows = diff_snapshots(*pair)
        text = render_blame_diff(rows, "original", "optimized", top=5)
        assert "Blame shift: original -> optimized" in text
        assert "pp" in text
        # top=5 -> header + separator + at most 5 rows
        assert len(text.splitlines()) <= 8
