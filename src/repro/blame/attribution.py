"""Dynamic blame attribution: samples × static info → variable blame.

This is the heart of post-mortem step 3 (paper §IV.C): for each
consolidated sample we evaluate ``isBlamed`` in the leaf frame and then
"bubble the blame up as far as we need" through the call path using the
per-callsite transfer functions:

* variables blamed inside a frame are recorded in that frame's context
  ("For those that are not used as parameters, the blame can be
  assigned without transfer functions");
* blamed ``ref`` formals map to the caller's argument variables;
* a blamed return value (the ``$ret`` pseudo-variable) blames the
  caller's consumers of the call result;
* globals are recorded directly under the ``main`` context.

A sample may blame many variables (inclusive semantics): "the total
percentage assigned to all variables can possibly be more than 100%".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chapel.types import Type
from ..ir.module import Module
from .dataflow import RET_KEY, Root, VarKey, render_path
from .postmortem import Instance
from .static_info import FunctionBlameInfo, ModuleBlameInfo


@dataclass
class VariableBlame:
    """Accumulated blame for one (context, variable[path]) row."""

    name: str
    context: str
    type: Type | None
    is_temp: bool
    samples: int = 0
    is_path: bool = False

    def percentage(self, total: int) -> float:
        return self.samples / total if total else 0.0


@dataclass
class AttributionResult:
    """Blame counts over one run's samples."""

    rows: dict[tuple[str, str], VariableBlame]
    total_samples: int  # denominator: user-code samples

    def sorted_rows(self, include_temps: bool = False) -> list[VariableBlame]:
        out = [
            r
            for r in self.rows.values()
            if include_temps or not r.is_temp
        ]
        out.sort(key=lambda r: (-r.samples, r.context, r.name))
        return out

    def blame_of(self, name: str, context: str | None = None) -> float:
        """Blame fraction of a variable by display name (optionally
        disambiguated by context)."""
        for (ctx, nm), row in self.rows.items():
            if nm == name and (context is None or ctx == context):
                return row.percentage(self.total_samples)
        return 0.0


def merge_attributions(parts: list[AttributionResult]) -> AttributionResult:
    """Combines per-shard attribution results by pure row summation.

    Blame combines by row-count addition (the paper's counts are sample
    tallies), so merging shard attributions in shard order — rows keyed
    by ``(context, name)``, samples summed, metadata from the first
    occurrence — reproduces the unsharded attribution exactly: row
    *content* is identical, and every consumer orders rows through
    ``sorted_rows`` (a total order on the unique keys), so dict
    insertion order is immaterial.  Input rows are copied, never
    mutated, and an empty part merges as the identity.
    """
    rows: dict[tuple[str, str], VariableBlame] = {}
    total = 0
    for part in parts:
        total += part.total_samples
        for key, row in part.rows.items():
            merged = rows.get(key)
            if merged is None:
                rows[key] = VariableBlame(
                    name=row.name,
                    context=row.context,
                    type=row.type,
                    is_temp=row.is_temp,
                    samples=row.samples,
                    is_path=row.is_path,
                )
            else:
                merged.samples += row.samples
    return AttributionResult(rows=rows, total_samples=total)


def _user_context(module: Module, func_name: str) -> str:
    """Display context: outlined parallel-loop bodies report under the
    user function whose loop was outlined (chasing nested outlining)."""
    seen = set()
    name = func_name
    while name not in seen:
        seen.add(name)
        f = module.get_function(name)
        if f is None or f.outlined_from is None:
            break
        name = f.outlined_from
    f = module.get_function(name)
    if f is not None and f.is_artificial:
        return "main"
    return f.source_name if f is not None else name


class BlameAttributor:
    """Attributes a stream of instances against static blame info."""

    def __init__(self, static: ModuleBlameInfo) -> None:
        self.static = static
        self.module = static.module

    def attribute(self, instances: list[Instance]) -> AttributionResult:
        rows: dict[tuple[str, str], VariableBlame] = {}

        # Attribution depends only on the call path: instances sharing a
        # frames tuple blame the same rows, so walk each distinct path
        # once, weighted by its multiplicity (hot loops produce the same
        # path thousands of times).  Groups keep first-seen order, so
        # rows are created in the same order as per-instance attribution.
        groups: dict[tuple, list[Instance]] = {}
        for inst in instances:
            groups.setdefault(inst.frames, []).append(inst)

        for insts in groups.values():
            blamed_this_sample: set[tuple[str, str]] = set()
            self._attribute_one(insts[0], rows, blamed_this_sample, len(insts))

        return AttributionResult(rows=rows, total_samples=len(instances))

    # -- per-sample ---------------------------------------------------------

    def _attribute_one(
        self,
        inst: Instance,
        rows: dict[tuple[str, str], VariableBlame],
        seen: set[tuple[str, str]],
        weight: int = 1,
    ) -> None:
        frames = inst.frames
        leaf_func, leaf_iid = frames[0]
        info = self.static.info_for(leaf_func)
        if info is None:
            return
        blamed: frozenset[Root] = info.blamed_at(leaf_iid)

        level = 0
        while True:
            self._record(info, blamed, rows, seen, weight)
            if not self.static.options.interprocedural:
                break  # ablation: leaf-frame attribution only
            if level + 1 >= len(frames):
                break
            # Bubble up through the call (or spawn) site. Paths within a
            # blamed formal travel along (they compose in map_up).
            exit_formals = frozenset(
                (key, path)
                for key, path in blamed
                if key.kind == "formal" and info.exit_vars.is_exit(key)
            )
            return_blamed = any(key == RET_KEY for key, _ in blamed)
            caller_func, callsite_iid = frames[level + 1]
            caller_info = self.static.info_for(caller_func)
            if caller_info is None:
                break
            tr = caller_info.transfer.map_up(
                callsite_iid, exit_formals, return_blamed
            )
            next_blamed: set[Root] = set(tr.caller_roots)
            if tr.any_exit_blamed:
                # Caller variables depending on this call site inherit
                # blame (return-value consumers, ref-arg dependents) —
                # but NOT the argument roots themselves: whether those
                # are blamed is exactly what the transfer function just
                # decided from the callee's exit variables.
                arg_map = caller_info.dataflow.call_arg_roots.get(
                    callsite_iid, {}
                )
                arg_keys = {
                    root[0] for roots in arg_map.values() for root in roots
                }
                next_blamed |= {
                    r
                    for r in caller_info.blamed_at(callsite_iid)
                    if r[0] not in arg_keys
                }
            blamed = frozenset(next_blamed)
            info = caller_info
            level += 1

    def _record(
        self,
        info: FunctionBlameInfo,
        blamed: frozenset[Root],
        rows: dict[tuple[str, str], VariableBlame],
        seen: set[tuple[str, str]],
        weight: int = 1,
    ) -> None:
        expanded: set[Root] = set()
        for key, path in blamed:
            # Every path prefix (including the bare root) is a
            # reportable row — Table IV lists partArray, ->partArray[i],
            # ->...zoneArray[j], ->...value, each with its own blame.
            for k in range(len(path) + 1):
                expanded.add((key, path[:k]))
        for key, path in expanded:
            if key == RET_KEY:
                continue
            meta = info.meta(key)
            if meta is None:
                continue
            if key.kind == "global":
                context = "main"
            else:
                context = _user_context(self.module, info.function.name)
            if path:
                display = "->" + meta.name + render_path(path)
            else:
                display = meta.name
            row_key = (context, display)
            if row_key in seen:
                continue
            seen.add(row_key)
            row = rows.get(row_key)
            if row is None:
                from .report import path_type

                row = VariableBlame(
                    name=display,
                    context=context,
                    type=meta.type if not path else path_type(meta.type, path),
                    is_temp=meta.is_temp,
                    is_path=bool(path),
                )
                rows[row_key] = row
            row.samples += weight
