"""``advise`` subcommand tests: dispatch, exit-status CI gate, JSON
output, rule/severity filtering, and benchmark resolution."""

import json

import pytest

from repro.tooling.cli import advise_main, main as cli_main

RACY = """
var total: int;
proc main() {
  forall i in 1..100 {
    total = total + i;
  }
  writeln(total);
}
"""

CLEAN = """
var A: [1..100] int;
proc main() {
  forall i in 1..100 {
    A[i] = i;
  }
  writeln(A[1]);
}
"""


@pytest.fixture
def racy_file(tmp_path):
    f = tmp_path / "racy.chpl"
    f.write_text(RACY)
    return str(f)


@pytest.fixture
def clean_file(tmp_path):
    f = tmp_path / "clean.chpl"
    f.write_text(CLEAN)
    return str(f)


class TestDispatch:
    def test_main_routes_advise_subcommand(self, clean_file, capsys):
        rc = cli_main(["advise", clean_file])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_legacy_positional_profile_still_works(self, clean_file, capsys):
        rc = cli_main([clean_file, "--threads", "2", "--threshold", "311"])
        assert rc == 0
        assert "Data-centric view" in capsys.readouterr().out


class TestExitGate:
    def test_race_exits_nonzero(self, racy_file, capsys):
        rc = advise_main([racy_file])
        assert rc == 1
        out = capsys.readouterr().out
        assert "forall-race" in out
        assert "total" in out

    def test_clean_exits_zero(self, clean_file):
        assert advise_main([clean_file]) == 0

    def test_warnings_do_not_gate(self, capsys):
        # MiniMD original is full of warnings but has no errors.
        assert advise_main(["--benchmark", "minimd:original"]) == 0
        assert "zippered-iteration" in capsys.readouterr().out

    def test_hidden_errors_still_gate(self, racy_file, capsys):
        # Display filtering must not weaken the CI contract.
        rc = advise_main([racy_file, "--min-severity", "error"])
        assert rc == 1


class TestJsonOutput:
    def test_json_contract(self, racy_file, capsys):
        rc = advise_main([racy_file, "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        (d,) = [x for x in payload if x["rule"] == "forall-race"]
        assert d["severity"] == "error"
        assert d["variables"] == ["total"]
        assert d["line"] > 0

    def test_json_empty_list_when_clean(self, clean_file, capsys):
        assert advise_main([clean_file, "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []


class TestSelection:
    def test_rules_subset(self, capsys):
        rc = advise_main(
            ["--benchmark", "minimd:original", "--rules", "zippered-iteration"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "zippered-iteration" in out
        assert "loop-domain-remap" not in out

    def test_min_severity_filters_display(self, capsys):
        advise_main(["--benchmark", "lulesh:original", "--min-severity", "warning"])
        out = capsys.readouterr().out
        assert "param-unroll" not in out
        assert "tuple-temporaries" in out


class TestBenchmarkResolution:
    def test_optimized_minimd_is_clean(self, capsys):
        assert advise_main(["--benchmark", "minimd:optimized"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_spmv_original_fires_comm_advice(self, capsys):
        assert advise_main(["--benchmark", "spmv:original"]) == 0
        out = capsys.readouterr().out
        assert "remote-access-batching" in out
        assert "aggregation-candidate" in out

    COMM_RULES = [
        "remote-access-batching",
        "aggregation-candidate",
        "indirection-hoist",
    ]

    def test_spmv_optimized_is_quiet(self, capsys):
        assert (
            advise_main(
                ["--benchmark", "spmv:optimized", "--rules", *self.COMM_RULES]
            )
            == 0
        )
        assert "no findings" in capsys.readouterr().out

    def test_spmv_dense_variant_resolves(self, capsys):
        assert (
            advise_main(
                ["--benchmark", "spmv:dense", "--rules", *self.COMM_RULES]
            )
            == 0
        )
        assert "no findings" in capsys.readouterr().out

    def test_mttkrp_original_fires_hoist(self, capsys):
        assert advise_main(["--benchmark", "mttkrp"]) == 0
        assert "indirection-hoist" in capsys.readouterr().out

    def test_unknown_spmv_variant_rejected(self):
        with pytest.raises(SystemExit):
            advise_main(["--benchmark", "spmv:blocked"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            advise_main(["--benchmark", "hpl"])

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            advise_main(["--benchmark", "minimd:fastest"])

    def test_source_and_benchmark_mutually_exclusive(self, clean_file):
        with pytest.raises(SystemExit):
            advise_main([clean_file, "--benchmark", "minimd"])

    def test_neither_source_nor_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            advise_main([])


class TestProfileIntegration:
    def test_profile_ranks_and_prints_hybrid(self, capsys):
        rc = advise_main(
            [
                "--benchmark",
                "minimd:original",
                "--profile",
                "--threads",
                "2",
                "--threshold",
                "4999",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Hybrid view" in out
        assert "advice [" in out
        assert "[blame" in out
