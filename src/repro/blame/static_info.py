"""Per-function and per-module static blame information (paper step 1).

:class:`ModuleBlameInfo` bundles everything the post-mortem stage needs:
per-function data flow, blame sets, exit variables and transfer
functions.  Building it is the "Static Analysis" box of paper Fig. 2 —
run once before execution, independent of any samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.module import Function, Module
from .dataflow import RET_KEY, DataFlow, Root, VarKey, VarMeta
from .exit_vars import ExitVars, compute_exit_vars
from .slices import BlameSets, compute_blame_sets
from .transfer import TransferFunction


@dataclass
class FunctionBlameInfo:
    """Static analysis results for one function."""

    function: Function
    dataflow: DataFlow
    blame_sets: BlameSets
    exit_vars: ExitVars
    transfer: TransferFunction

    def blamed_at(self, iid: int) -> frozenset[Root]:
        return self.blame_sets.blamed_at(iid)

    def meta(self, key: VarKey) -> VarMeta | None:
        m = self.dataflow.var_meta.get(key)
        if m is None and key.kind == "global":
            # Root arrived via a module-wide alias fact; the function
            # never references it directly. Synthesize from the module.
            g = self.dataflow.module.globals.get(str(key.ident))
            if g is not None:
                m = VarMeta(
                    key=key, name=g.name, type=g.type,
                    is_temp=g.is_temp, context="main",
                )
                self.dataflow.var_meta[key] = m
        return m


def compute_global_aliases(
    module: Module, options: "object | None" = None
) -> dict[VarKey, frozenset[Root]]:
    """Phase 1 of the static analysis: module-wide alias facts.

    A data-flow pass over every function collects which globals hold
    aliases of which (e.g. module init storing a slice of ``Pos`` into
    ``RealPos``), iterated so aliases of aliases converge.  Cheap and
    inherently whole-module, so the parallel analyzer runs it serially
    in the parent before fanning out the per-function phase 2.
    """
    from .options import FULL

    options = options or FULL
    global_aliases: dict[VarKey, frozenset[Root]] = {}
    for _round in range(3):
        merged: dict[VarKey, set[Root]] = {
            k: set(v) for k, v in global_aliases.items()
        }
        for fn in module.functions.values():
            df = DataFlow(fn, module, global_aliases=global_aliases, options=options)
            for key, roots in df.stored_roots.items():
                if key.kind == "global":
                    merged.setdefault(key, set()).update(
                        r for r in roots if r[0].kind == "global"
                    )
        new_aliases = {k: frozenset(v) for k, v in merged.items()}
        if new_aliases == global_aliases:
            break
        global_aliases = new_aliases
    return global_aliases


def analyze_function(
    fn: Function,
    module: Module,
    global_aliases: "dict[VarKey, frozenset[Root]]",
    options: "object | None" = None,
) -> FunctionBlameInfo:
    """Phase 2 for one function: the full per-function analyses with the
    module-wide alias facts visible.  Pure in the function's IR, the
    module context, the aliases and the options — which is what lets the
    parallel analyzer run it on a pickled module copy in a worker and
    still get content-identical results (blame sets are keyed by
    instruction ids, which survive pickling unchanged)."""
    from .options import FULL

    options = options or FULL
    df = DataFlow(fn, module, global_aliases=global_aliases, options=options)
    return FunctionBlameInfo(
        function=fn,
        dataflow=df,
        blame_sets=compute_blame_sets(fn, df),
        exit_vars=compute_exit_vars(fn, df),
        transfer=TransferFunction(df),
    )


class ModuleBlameInfo:
    """Static blame info for every function in a module.

    Built in two phases: a first data-flow pass over every function
    collects *global alias facts* (e.g. module init storing a slice of
    ``Pos`` into ``RealPos``); a second pass re-runs the analyses with
    those facts seeded, so writes through an alias blame the base
    everywhere in the program (Chapel slice semantics, paper §V.A).
    """

    def __init__(self, module: Module, options: "object | None" = None) -> None:
        from .options import FULL

        self.module = module
        self.options = options or FULL
        self.functions: dict[str, FunctionBlameInfo] = {}

        # Phase 1 (see compute_global_aliases).
        self.global_aliases = compute_global_aliases(module, self.options)

        # Phase 2: full per-function analyses with aliases visible.
        # Results are cached on each Function, keyed by content hashes of
        # everything the analyses read (its own IR, the module context,
        # the alias facts) plus the options — so repeated profiles of an
        # unchanged module skip straight to the stored FunctionBlameInfo.
        from . import cache as _cache

        sig_fp = _cache.module_signatures_fingerprint(module)
        aliases_fp = _cache.aliases_fingerprint(self.global_aliases)
        for name, fn in module.functions.items():
            key = (_cache.function_fingerprint(fn), sig_fp, aliases_fp, self.options)
            info = _cache.cached_function_info(fn, key)
            if info is None:
                info = analyze_function(
                    fn, module, self.global_aliases, self.options
                )
                _cache.store_function_info(fn, key, info)
            self.functions[name] = info

    @classmethod
    def from_parts(
        cls,
        module: Module,
        options: object,
        global_aliases: "dict[VarKey, frozenset[Root]]",
        functions: "dict[str, FunctionBlameInfo]",
    ) -> "ModuleBlameInfo":
        """Assembles a ModuleBlameInfo from externally computed pieces
        (the parallel analyzer's reassembly seam).  ``module`` should be
        the *parent* module object even when some ``functions`` entries
        were computed against pickled copies: display-name resolution
        (``_user_context``) goes through this attribute, and the copies
        are content-identical where the analyses are concerned."""
        info = cls.__new__(cls)
        info.module = module
        info.options = options
        info.global_aliases = global_aliases
        info.functions = dict(functions)
        return info

    def info_for(self, func_name: str) -> FunctionBlameInfo | None:
        return self.functions.get(func_name)

    def variable_lines_map(self, func_name: str) -> dict[str, set[int]]:
        """The paper's Table I artifact: variable name → set of source
        lines in its BlameSet (computed over this function's own
        instructions).  Temporaries are excluded, mirroring the GUI."""
        info = self.functions.get(func_name)
        if info is None:
            return {}
        line_of = {
            instr.iid: instr.loc.line for instr in info.function.instructions()
        }
        out: dict[str, set[int]] = {}
        for (key, path), iids in info.blame_sets.by_var.items():
            if path or key == RET_KEY:
                continue
            meta = info.dataflow.var_meta.get(key)
            if meta is None or meta.is_temp:
                continue
            lines = {line_of[i] for i in iids if i in line_of}
            if lines:
                out.setdefault(meta.name, set()).update(lines)
        return out
