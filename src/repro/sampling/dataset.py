"""Raw-sample dataset persistence.

The real tool writes the step-2 artifact ("the sizes of the datasets
generated during runtime are 6 MB to 20 MB") to disk and runs step 3
post-mortem, possibly elsewhere — it is "embarrassingly parallel for
multi-locale cases".  This module serializes a monitor's sample stream
to JSONL with a header recording the program identity (source SHA-256)
and sampling configuration, so a separate process can re-do the
analysis: recompile the source with fresh deterministic instruction
ids, check the hash, and attribute.

Format: line 1 is a header object; each further line is one sample.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from .records import RawSample

FORMAT_VERSION = 1


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


@dataclass(frozen=True)
class DatasetHeader:
    """Identity and configuration of a recorded run."""

    program: str
    source_sha256: str
    threshold: int
    num_threads: int
    locale_id: int = 0
    version: int = FORMAT_VERSION

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "program": self.program,
            "source_sha256": self.source_sha256,
            "threshold": self.threshold,
            "num_threads": self.num_threads,
            "locale_id": self.locale_id,
        }

    @classmethod
    def from_json(cls, d: dict) -> "DatasetHeader":
        if d.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset version {d.get('version')!r}"
            )
        return cls(
            program=d["program"],
            source_sha256=d["source_sha256"],
            threshold=d["threshold"],
            num_threads=d["num_threads"],
            locale_id=d.get("locale_id", 0),
        )


def _sample_to_json(s: RawSample) -> dict:
    out = {
        "i": s.index,
        "t": s.thread_id,
        "k": s.task_id,
        "s": [[f, iid] for f, iid in s.stack],
        "ip": s.leaf_iid,
    }
    if s.is_idle:
        out["idle"] = True
    if s.spawn_tag is not None:
        out["tag"] = s.spawn_tag
        out["pre"] = [[f, iid] for f, iid in (s.pre_spawn_stack or ())]
    return out


def _sample_from_json(d: dict) -> RawSample:
    return RawSample(
        index=d["i"],
        thread_id=d["t"],
        task_id=d["k"],
        stack=tuple((f, iid) for f, iid in d["s"]),
        leaf_iid=d["ip"],
        spawn_tag=d.get("tag"),
        pre_spawn_stack=(
            tuple((f, iid) for f, iid in d["pre"]) if "tag" in d else None
        ),
        is_idle=d.get("idle", False),
    )


def save_samples(
    path: str, header: DatasetHeader, samples: list[RawSample]
) -> None:
    """Writes a run's raw samples as JSONL (header line + one per sample)."""
    with open(path, "w") as f:
        f.write(json.dumps(header.to_json()) + "\n")
        for s in samples:
            f.write(json.dumps(_sample_to_json(s)) + "\n")


def load_samples(path: str) -> tuple[DatasetHeader, list[RawSample]]:
    """Reads a dataset back: (header, samples)."""
    with open(path) as f:
        first = f.readline()
        if not first:
            raise ValueError(f"{path}: empty dataset")
        header = DatasetHeader.from_json(json.loads(first))
        samples = [_sample_from_json(json.loads(line)) for line in f if line.strip()]
    return header, samples
