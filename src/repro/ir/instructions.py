"""Instruction set of the LLVM-like IR.

The IR is a register machine lowered clang -O0 style: every source
variable gets an ``alloca``; reads/writes go through ``load``/``store``.
This is deliberate — the paper's blame analysis keys on *stores* (the
set ``W`` of writes to a variable's memory) and on use-def chains, so
keeping memory traffic explicit keeps the analysis faithful.

Design notes relevant to blame:

* Every instruction carries a module-unique ``iid`` — the simulated
  "instruction address" that PMU samples record — and a source
  location (``loc``) used for address→line resolution (paper §IV.C).
* ``Alloca`` and module globals carry variable bindings (name, type,
  ``is_temp``) — the debug-info the authors had to add to the Chapel
  LLVM frontend.  Compiler temporaries are flagged and hidden from
  reports but still tracked in the data flow (paper §IV.A).
* Array views created by ``ArraySlice``/``ArrayReindex`` alias their
  base (Chapel slice semantics), which is how MiniMD's ``RealPos``
  inherits blame from ``Pos``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Iterable

from ..chapel.tokens import SourceLocation
from ..chapel.types import Type

# ---------------------------------------------------------------------------
# Values (operands)
# ---------------------------------------------------------------------------


class Value:
    """Base class of IR operands."""

    type: Type


@dataclass(frozen=True)
class Constant(Value):
    """An immediate constant operand."""

    type: Type
    value: object

    def __str__(self) -> str:
        return f"{self.value}"


class Register(Value):
    """A virtual register produced by exactly one instruction."""

    _counter = itertools.count()

    __slots__ = ("type", "rid", "hint", "producer")

    def __init__(self, type: Type, hint: str = "t") -> None:
        self.type = type
        self.rid = next(Register._counter)
        self.hint = hint
        #: Back-pointer to the producing instruction (set by the builder);
        #: this is the use-def edge the backward slicer walks.
        self.producer: "Instruction | None" = None

    def __str__(self) -> str:
        return f"%{self.hint}{self.rid}"

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True)
class GlobalRef(Value):
    """Reference to a module global's storage (an address value)."""

    type: Type  # type of the stored value
    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

_iid_counter = itertools.count(1)


def reset_iid_counter() -> None:
    """Restart instruction ids (see :func:`reset_ir_counters`)."""
    global _iid_counter
    _iid_counter = itertools.count(1)


def reset_ir_counters() -> None:
    """Restart ALL IR id counters (instructions, registers, blocks).

    Compiling the same source after a reset yields byte-identical ids —
    the property that lets a saved sample dataset (whose stacks store
    instruction ids) be re-analyzed in another process by recompiling
    the source.  Only safe when no previously-compiled module's ids
    will be mixed with the new module's.
    """
    from .module import BasicBlock

    reset_iid_counter()
    Register._counter = itertools.count()
    BasicBlock._counter = itertools.count()


class Instruction:
    """Base class: every instruction has an id, location, and operands."""

    opname = "instr"
    __slots__ = ("iid", "loc", "result", "parent")

    def __init__(self, loc: SourceLocation, result: Register | None = None) -> None:
        self.iid = next(_iid_counter)
        self.loc = loc
        self.result = result
        if result is not None:
            result.producer = self
        self.parent: object | None = None  # owning BasicBlock

    def operands(self) -> Iterable[Value]:
        """Value operands, for use-def traversal."""
        return ()

    def replace_operand(self, old: Value, new: Value) -> None:
        """Rewrites occurrences of ``old`` with ``new`` (pass support)."""
        raise NotImplementedError(self.opname)

    def is_terminator(self) -> bool:
        return False

    def _ops_str(self) -> str:
        return ", ".join(str(o) for o in self.operands())

    def __str__(self) -> str:
        head = f"{self.result} = " if self.result is not None else ""
        return f"{head}{self.opname} {self._ops_str()}".rstrip()

    def __repr__(self) -> str:
        return f"<{self.iid}: {self}>"


class _SimpleOps:
    """Mixin for instructions that keep operands in ``self.ops``."""

    __slots__ = ()

    def operands(self) -> Iterable[Value]:
        return list(self.ops)  # type: ignore[attr-defined]

    def replace_operand(self, old: Value, new: Value) -> None:
        self.ops = [new if o is old else o for o in self.ops]  # type: ignore[attr-defined]


class Alloca(Instruction):
    """Reserves a stack slot for one source variable (or temporary).

    The result register is the slot's *address*.  ``var_name`` /
    ``is_temp`` are the debug-info variable binding.
    """

    opname = "alloca"
    __slots__ = ("alloc_type", "var_name", "is_temp", "formal_home")

    def __init__(
        self,
        loc: SourceLocation,
        result: Register,
        alloc_type: Type,
        var_name: str,
        is_temp: bool = False,
        formal_home: str | None = None,
    ) -> None:
        super().__init__(loc, result)
        self.alloc_type = alloc_type
        self.var_name = var_name
        self.is_temp = is_temp
        #: For "in" formals, the formal's name: the alloca is the home
        #: slot the incoming value is stored into. Blame identifies it
        #: with the formal (pointer-like "in" formals are exit vars).
        self.formal_home = formal_home

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def __str__(self) -> str:
        tag = " (temp)" if self.is_temp else ""
        return f"{self.result} = alloca {self.alloc_type} ; var {self.var_name}{tag}"


class Load(_SimpleOps, Instruction):
    """Reads the value at an address."""

    opname = "load"
    __slots__ = ("ops",)

    def __init__(self, loc: SourceLocation, result: Register, addr: Value) -> None:
        super().__init__(loc, result)
        self.ops = [addr]

    @property
    def addr(self) -> Value:
        return self.ops[0]


class Store(_SimpleOps, Instruction):
    """Writes a value to an address — the blame-defining event."""

    opname = "store"
    __slots__ = ("ops",)

    def __init__(self, loc: SourceLocation, value: Value, addr: Value) -> None:
        super().__init__(loc, None)
        self.ops = [value, addr]

    @property
    def value(self) -> Value:
        return self.ops[0]

    @property
    def addr(self) -> Value:
        return self.ops[1]


class FieldAddr(_SimpleOps, Instruction):
    """GEP-style: address of field ``index`` (named ``field_name``) inside
    the record/tuple at ``base`` (an address)."""

    opname = "fieldaddr"
    __slots__ = ("ops", "index", "field_name")

    def __init__(
        self,
        loc: SourceLocation,
        result: Register,
        base: Value,
        index: int,
        field_name: str,
    ) -> None:
        super().__init__(loc, result)
        self.ops = [base]
        self.index = index
        self.field_name = field_name

    @property
    def base(self) -> Value:
        return self.ops[0]

    def __str__(self) -> str:
        return f"{self.result} = fieldaddr {self.base}, .{self.field_name}"


class ElemAddr(_SimpleOps, Instruction):
    """Address of an array element: ``base`` is an array *value*
    (descriptor), the remaining operands are index values."""

    opname = "elemaddr"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, base: Value, indices: list[Value]
    ) -> None:
        super().__init__(loc, result)
        self.ops = [base, *indices]

    @property
    def base(self) -> Value:
        return self.ops[0]

    @property
    def indices(self) -> list[Value]:
        return self.ops[1:]


class TupleElemAddr(_SimpleOps, Instruction):
    """Address of element ``index`` of the tuple stored at address
    ``base`` (tuples are in-memory value types here, like LULESH's
    ``hgfx: 8*real``)."""

    opname = "tupleelemaddr"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, base: Value, index: Value
    ) -> None:
        super().__init__(loc, result)
        self.ops = [base, index]

    @property
    def base(self) -> Value:
        return self.ops[0]

    @property
    def index(self) -> Value:
        return self.ops[1]


class BinOp(_SimpleOps, Instruction):
    """Arithmetic/comparison/logic on scalars (or elementwise tuples —
    Chapel tuple ``+`` as used by CalcElemNodeNormals)."""

    opname = "binop"
    __slots__ = ("ops", "op")

    def __init__(
        self, loc: SourceLocation, result: Register, op: str, lhs: Value, rhs: Value
    ) -> None:
        super().__init__(loc, result)
        self.op = op
        self.ops = [lhs, rhs]

    @property
    def lhs(self) -> Value:
        return self.ops[0]

    @property
    def rhs(self) -> Value:
        return self.ops[1]

    def __str__(self) -> str:
        return f"{self.result} = {self.op} {self.lhs}, {self.rhs}"


class UnOp(_SimpleOps, Instruction):
    opname = "unop"
    __slots__ = ("ops", "op")

    def __init__(
        self, loc: SourceLocation, result: Register, op: str, operand: Value
    ) -> None:
        super().__init__(loc, result)
        self.op = op
        self.ops = [operand]

    @property
    def operand(self) -> Value:
        return self.ops[0]

    def __str__(self) -> str:
        return f"{self.result} = {self.op}{self.operand}"


class Cast(_SimpleOps, Instruction):
    """Numeric conversion (int<->real)."""

    opname = "cast"
    __slots__ = ("ops",)

    def __init__(self, loc: SourceLocation, result: Register, value: Value) -> None:
        super().__init__(loc, result)
        self.ops = [value]

    @property
    def value(self) -> Value:
        return self.ops[0]


class Call(_SimpleOps, Instruction):
    """Direct call to a module function or builtin intrinsic."""

    opname = "call"
    __slots__ = ("ops", "callee", "is_builtin")

    def __init__(
        self,
        loc: SourceLocation,
        result: Register | None,
        callee: str,
        args: list[Value],
        is_builtin: bool = False,
    ) -> None:
        super().__init__(loc, result)
        self.callee = callee
        self.ops = list(args)
        self.is_builtin = is_builtin

    @property
    def args(self) -> list[Value]:
        return self.ops

    def __str__(self) -> str:
        head = f"{self.result} = " if self.result is not None else ""
        return f"{head}call {self.callee}({self._ops_str()})"


class Ret(_SimpleOps, Instruction):
    opname = "ret"
    __slots__ = ("ops",)

    def __init__(self, loc: SourceLocation, value: Value | None = None) -> None:
        super().__init__(loc, None)
        self.ops = [] if value is None else [value]

    @property
    def value(self) -> Value | None:
        return self.ops[0] if self.ops else None

    def is_terminator(self) -> bool:
        return True


class Br(Instruction):
    opname = "br"
    __slots__ = ("target",)

    def __init__(self, loc: SourceLocation, target: "object") -> None:
        super().__init__(loc, None)
        self.target = target  # BasicBlock

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"br {getattr(self.target, 'label', self.target)}"


class CBr(_SimpleOps, Instruction):
    """Conditional branch — the root of implicit (control-dependence)
    blame transfer: variables feeding ``cond`` blame everything in the
    dependent blocks (paper §IV.A)."""

    opname = "cbr"
    __slots__ = ("ops", "then_block", "else_block")

    def __init__(
        self,
        loc: SourceLocation,
        cond: Value,
        then_block: "object",
        else_block: "object",
    ) -> None:
        super().__init__(loc, None)
        self.ops = [cond]
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self.ops[0]

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return (
            f"cbr {self.cond}, {getattr(self.then_block, 'label', '?')}, "
            f"{getattr(self.else_block, 'label', '?')}"
        )


# ---------------------------------------------------------------------------
# Runtime instructions (Chapel-level operations the cost model prices)
# ---------------------------------------------------------------------------


class MakeRange(_SimpleOps, Instruction):
    """Builds a range value from lo, hi, step; ``counted`` means
    ``lo..#n`` (hi operand is the count)."""

    opname = "makerange"
    __slots__ = ("ops", "counted")

    def __init__(
        self,
        loc: SourceLocation,
        result: Register,
        lo: Value,
        hi: Value,
        step: Value,
        counted: bool = False,
    ) -> None:
        super().__init__(loc, result)
        self.ops = [lo, hi, step]
        self.counted = counted


class MakeDomain(_SimpleOps, Instruction):
    """Builds a rectangular domain from per-dimension ranges."""

    opname = "makedomain"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, dims: list[Value]
    ) -> None:
        super().__init__(loc, result)
        self.ops = list(dims)


class MakeSparseDomain(_SimpleOps, Instruction):
    """Builds an empty sparse subdomain of a rectangular ``parent``
    domain.  Indices are added dynamically via ``domainop.insert``
    (the lowering of ``spD += idx``)."""

    opname = "makesparsedomain"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, parent: Value
    ) -> None:
        super().__init__(loc, result)
        self.ops = [parent]

    @property
    def parent_domain(self) -> Value:
        # (``parent`` is taken: the base Instruction uses it for the
        # owning basic block.)
        return self.ops[0]


class MakeAssocDomain(Instruction):
    """Builds an empty associative domain (``domain(int)``)."""

    opname = "makeassocdomain"
    __slots__ = ()

    def __init__(self, loc: SourceLocation, result: Register) -> None:
        super().__init__(loc, result)

    def replace_operand(self, old: Value, new: Value) -> None:
        pass


class MakeArray(_SimpleOps, Instruction):
    """Heap-allocates an array over a domain.  This is the dynamic
    allocation that LULESH's ``determ``/``dvdx`` pay per call and that
    Variable Globalization hoists (paper §V.C)."""

    opname = "makearray"
    __slots__ = ("ops", "elem_type")

    def __init__(
        self, loc: SourceLocation, result: Register, domain: Value, elem_type: Type
    ) -> None:
        super().__init__(loc, result)
        self.ops = [domain]
        self.elem_type = elem_type

    @property
    def domain(self) -> Value:
        return self.ops[0]

    def __str__(self) -> str:
        return f"{self.result} = makearray {self.domain}, {self.elem_type}"


class ArraySlice(_SimpleOps, Instruction):
    """Aliasing slice ``A[D]`` — no copy (Chapel semantics; MiniMD's
    ``RealPos``/``RealCount``)."""

    opname = "arrayslice"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, base: Value, domain: Value
    ) -> None:
        super().__init__(loc, result)
        self.ops = [base, domain]

    @property
    def base(self) -> Value:
        return self.ops[0]

    @property
    def domain(self) -> Value:
        return self.ops[1]


class ArrayReindex(_SimpleOps, Instruction):
    """Domain remapping ``A[newDom]`` used as an iterand/view with index
    translation — the construct the paper found expensive in MiniMD."""

    opname = "arrayreindex"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, base: Value, domain: Value
    ) -> None:
        super().__init__(loc, result)
        self.ops = [base, domain]

    @property
    def base(self) -> Value:
        return self.ops[0]

    @property
    def domain(self) -> Value:
        return self.ops[1]


class DomainOp(_SimpleOps, Instruction):
    """Domain/range/array query or derivation: ``expand``, ``size``,
    ``dim``, ``high``, ``low``, ``translate``, ``interior``..."""

    opname = "domainop"
    __slots__ = ("ops", "op")

    def __init__(
        self,
        loc: SourceLocation,
        result: Register,
        op: str,
        base: Value,
        args: list[Value],
    ) -> None:
        super().__init__(loc, result)
        self.op = op
        self.ops = [base, *args]

    @property
    def base(self) -> Value:
        return self.ops[0]

    def __str__(self) -> str:
        return f"{self.result} = domainop.{self.op} {self._ops_str()}"


class MakeTuple(_SimpleOps, Instruction):
    """Constructs a tuple value from elements.  Construction/destruction
    of nested tuple temporaries is the cost CENN eliminates (paper §V.C)."""

    opname = "maketuple"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, elems: list[Value]
    ) -> None:
        super().__init__(loc, result)
        self.ops = list(elems)


class TupleGet(_SimpleOps, Instruction):
    """Extracts element ``index`` from a tuple *value*."""

    opname = "tupleget"
    __slots__ = ("ops",)

    def __init__(
        self, loc: SourceLocation, result: Register, tup: Value, index: Value
    ) -> None:
        super().__init__(loc, result)
        self.ops = [tup, index]

    @property
    def tup(self) -> Value:
        return self.ops[0]

    @property
    def index(self) -> Value:
        return self.ops[1]


class NewObject(_SimpleOps, Instruction):
    """Heap-allocates a class instance (CLOMP's Part objects)."""

    opname = "newobject"
    __slots__ = ("ops", "type_name")

    def __init__(
        self, loc: SourceLocation, result: Register, type_name: str, args: list[Value]
    ) -> None:
        super().__init__(loc, result)
        self.type_name = type_name
        self.ops = list(args)

    def __str__(self) -> str:
        return f"{self.result} = new {self.type_name}({self._ops_str()})"


class IterInit(_SimpleOps, Instruction):
    """Creates an iterator state over a range/domain/array value.

    ``zippered`` marks iterators participating in zippered iteration,
    which the cost model charges extra per step (the MiniMD finding).
    """

    opname = "iterinit"
    __slots__ = ("ops", "zippered")

    def __init__(
        self, loc: SourceLocation, result: Register, iterable: Value, zippered: bool
    ) -> None:
        super().__init__(loc, result)
        self.ops = [iterable]
        self.zippered = zippered

    @property
    def iterable(self) -> Value:
        return self.ops[0]


class IterNext(_SimpleOps, Instruction):
    """Advances an iterator; result is a bool (True while valid)."""

    opname = "iternext"
    __slots__ = ("ops",)

    def __init__(self, loc: SourceLocation, result: Register, state: Value) -> None:
        super().__init__(loc, result)
        self.ops = [state]

    @property
    def state(self) -> Value:
        return self.ops[0]


class IterValue(_SimpleOps, Instruction):
    """Current element of an iterator (index tuple for domains,
    element value for arrays)."""

    opname = "itervalue"
    __slots__ = ("ops",)

    def __init__(self, loc: SourceLocation, result: Register, state: Value) -> None:
        super().__init__(loc, result)
        self.ops = [state]

    @property
    def state(self) -> Value:
        return self.ops[0]


class SpawnJoin(_SimpleOps, Instruction):
    """Parallel loop: splits the iteration space of ``iterables`` into
    task chunks, spawns worker tasks each running ``outlined`` with
    (chunk..., captures...), and joins.

    This is the tasking-layer event the paper instruments: each spawn
    gets a unique tag and the pre-spawn stack is recorded so worker
    samples can be glued into full call paths (paper §IV.B).
    ``kind`` is "forall" (block-chunked) or "coforall" (one task per
    index).
    """

    opname = "spawnjoin"
    __slots__ = ("ops", "outlined", "kind", "n_iterables")

    def __init__(
        self,
        loc: SourceLocation,
        outlined: str,
        kind: str,
        iterables: list[Value],
        captures: list[Value],
    ) -> None:
        super().__init__(loc, None)
        self.outlined = outlined
        self.kind = kind
        self.n_iterables = len(iterables)
        self.ops = [*iterables, *captures]

    @property
    def iterables(self) -> list[Value]:
        return self.ops[: self.n_iterables]

    @property
    def captures(self) -> list[Value]:
        return self.ops[self.n_iterables :]

    def __str__(self) -> str:
        return f"spawnjoin[{self.kind}] {self.outlined}({self._ops_str()})"
