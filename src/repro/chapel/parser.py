"""Recursive-descent parser for the mini-Chapel frontend.

Grammar summary (precedence, loosest to tightest)::

    expr      := ifexpr | orexpr
    orexpr    := andexpr ('||' andexpr)*
    andexpr   := cmpexpr ('&&' cmpexpr)*
    cmpexpr   := rangeexpr (('=='|'!='|'<'|'<='|'>'|'>=') rangeexpr)?
    rangeexpr := addexpr (('..'|'..#') addexpr ('by' addexpr)?)?
    addexpr   := mulexpr (('+'|'-') mulexpr)*
    mulexpr   := powexpr (('*'|'/'|'%') powexpr)*
    powexpr   := unary ('**' powexpr)?          # right associative
    unary     := ('-'|'!'|'+') unary | reduce | postfix
    reduce    := ('+'|'*'|'min'|'max') 'reduce' unary
    postfix   := primary (call-args | '[' exprs ']' | '.' ident (args)?)*
    primary   := literal | ident | '(' exprs ')' | '{' ranges '}' | 'new' ...

Statements cover ``var/const/param/config`` declarations, assignment
(including ``+=`` family), ``if``/``while``/``for``/``forall``/
``coforall`` (with ``zip`` and ``param`` forms), ``select``-``when``,
``return``/``break``/``continue``, ``proc`` and ``record`` declarations.
Both brace-blocks and Chapel's ``then``/``do`` single-statement forms
are accepted.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import SourceLocation, Token, TokenKind

_ASSIGN_OPS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
}

_CMP_OPS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_ADD_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MUL_OPS = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}

_SCALAR_TYPE_KWS = {
    TokenKind.KW_INT: "int",
    TokenKind.KW_REAL: "real",
    TokenKind.KW_BOOL: "bool",
    TokenKind.KW_STRING: "string",
    TokenKind.KW_VOID: "void",
}


class Parser:
    """Parses a token stream into a :class:`~repro.chapel.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token], filename: str = "<string>") -> None:
        self.tokens = tokens
        self.filename = filename
        self.pos = 0

    # -- Token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _at_any(self, *kinds: TokenKind) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or kind.value
            raise ParseError(
                f"expected {expected!r}, found {tok.text or tok.kind.value!r}",
                tok.loc,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- Program -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        loc = self._peek().loc
        decls: list[ast.Stmt] = []
        while not self._at(TokenKind.EOF):
            decls.append(self.parse_statement())
        return ast.Program(loc=loc, decls=decls, filename=self.filename)

    # -- Statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        kind = tok.kind
        if kind in (TokenKind.KW_VAR, TokenKind.KW_CONST, TokenKind.KW_PARAM):
            return self._parse_var_decl(is_config=False)
        if kind is TokenKind.KW_CONFIG:
            self._advance()
            if not self._at_any(
                TokenKind.KW_CONST, TokenKind.KW_VAR, TokenKind.KW_PARAM
            ):
                raise ParseError("expected 'const'/'var'/'param' after 'config'", tok.loc)
            return self._parse_var_decl(is_config=True)
        if kind is TokenKind.KW_PROC:
            return self._parse_proc()
        if kind is TokenKind.KW_ITER:
            return self._parse_proc(is_iter=True)
        if kind is TokenKind.KW_YIELD:
            self._advance()
            value = self.parse_expression()
            self._expect(TokenKind.SEMI)
            return ast.Yield(loc=tok.loc, value=value)
        if kind in (TokenKind.KW_RECORD, TokenKind.KW_CLASS):
            return self._parse_record()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind in (TokenKind.KW_FOR, TokenKind.KW_FORALL, TokenKind.KW_COFORALL):
            return self._parse_loop()
        if kind is TokenKind.KW_SELECT:
            return self._parse_select()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            value = None if self._at(TokenKind.SEMI) else self.parse_expression()
            self._expect(TokenKind.SEMI)
            return ast.Return(loc=tok.loc, value=value)
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Break(loc=tok.loc)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Continue(loc=tok.loc)
        if kind is TokenKind.KW_USE:
            self._advance()
            mod = self._expect(TokenKind.IDENT, "module name").text
            self._expect(TokenKind.SEMI)
            return ast.Use(loc=tok.loc, module=mod)
        if kind is TokenKind.LBRACE:
            return self.parse_block()
        return self._parse_expr_or_assign()

    def parse_block(self) -> ast.Block:
        lbrace = self._expect(TokenKind.LBRACE)
        stmts: list[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", lbrace.loc)
            stmts.append(self.parse_statement())
        self._expect(TokenKind.RBRACE)
        return ast.Block(loc=lbrace.loc, stmts=stmts)

    def _parse_body_or_single(self, intro_kind: TokenKind | None) -> ast.Block:
        """Parses either ``{ ... }`` or a ``then``/``do`` single statement."""
        if intro_kind is not None and self._at(intro_kind):
            tok = self._advance()
            stmt = self.parse_statement()
            return ast.Block(loc=tok.loc, stmts=[stmt])
        if self._at(TokenKind.LBRACE):
            return self.parse_block()
        # Bare single statement (allowed after else).
        stmt = self.parse_statement()
        return ast.Block(loc=stmt.loc, stmts=[stmt])

    def _parse_var_decl(self, is_config: bool) -> ast.VarDecl:
        tok = self._advance()  # var/const/param
        kind = tok.text
        name = self._expect(TokenKind.IDENT, "variable name").text
        declared_type = None
        init = None
        if self._accept(TokenKind.COLON):
            declared_type = self.parse_type()
        if self._accept(TokenKind.ASSIGN):
            init = self.parse_expression()
        self._expect(TokenKind.SEMI)
        if declared_type is None and init is None:
            raise ParseError(
                f"declaration of {name!r} needs a type or an initializer", tok.loc
            )
        return ast.VarDecl(
            loc=tok.loc,
            kind=kind,
            name=name,
            declared_type=declared_type,
            init=init,
            is_config=is_config,
        )

    def _parse_proc(self, is_iter: bool = False) -> ast.ProcDecl:
        tok = self._advance()  # proc / iter
        name = self._expect(TokenKind.IDENT, "procedure name").text
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        while not self._at(TokenKind.RPAREN):
            params.append(self._parse_param())
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        return_type = None
        if self._accept(TokenKind.COLON):
            return_type = self.parse_type()
        body = self.parse_block()
        return ast.ProcDecl(
            loc=tok.loc, name=name, params=params, return_type=return_type,
            body=body, is_iter=is_iter,
        )

    def _parse_param(self) -> ast.Param:
        tok = self._peek()
        intent = "in"
        if tok.kind is TokenKind.KW_REF:
            intent = "ref"
            self._advance()
        elif tok.kind is TokenKind.KW_IN:
            intent = "in"
            self._advance()
        elif tok.kind is TokenKind.KW_OUT:
            intent = "out"
            self._advance()
        elif tok.kind is TokenKind.KW_INOUT:
            intent = "inout"
            self._advance()
        elif tok.kind is TokenKind.KW_CONST:
            # 'const ref' / 'const in' collapse to their base intent here.
            self._advance()
            if self._at(TokenKind.KW_REF):
                intent = "ref"
                self._advance()
            elif self._at(TokenKind.KW_IN):
                self._advance()
        elif tok.kind is TokenKind.KW_PARAM:
            intent = "param"
            self._advance()
        name_tok = self._expect(TokenKind.IDENT, "parameter name")
        declared_type = None
        if self._accept(TokenKind.COLON):
            declared_type = self.parse_type()
        return ast.Param(
            name=name_tok.text,
            intent=intent,
            declared_type=declared_type,
            loc=name_tok.loc,
        )

    def _parse_record(self) -> ast.RecordDecl:
        tok = self._advance()  # record / class
        is_class = tok.kind is TokenKind.KW_CLASS
        name = self._expect(TokenKind.IDENT, "record name").text
        self._expect(TokenKind.LBRACE)
        fields: list[ast.FieldDecl] = []
        while not self._at(TokenKind.RBRACE):
            ftok = self._peek()
            if not self._at_any(TokenKind.KW_VAR, TokenKind.KW_CONST):
                raise ParseError("expected field declaration in record body", ftok.loc)
            self._advance()
            fname = self._expect(TokenKind.IDENT, "field name").text
            self._expect(TokenKind.COLON)
            ftype = self.parse_type()
            finit = None
            if self._accept(TokenKind.ASSIGN):
                finit = self.parse_expression()
            self._expect(TokenKind.SEMI)
            fields.append(
                ast.FieldDecl(name=fname, declared_type=ftype, init=finit, loc=ftok.loc)
            )
        self._expect(TokenKind.RBRACE)
        return ast.RecordDecl(loc=tok.loc, name=name, fields=fields, is_class=is_class)

    def _parse_if(self) -> ast.If:
        tok = self._expect(TokenKind.KW_IF)
        cond = self.parse_expression()
        then_body = self._parse_body_or_single(TokenKind.KW_THEN)
        else_body = None
        if self._accept(TokenKind.KW_ELSE):
            else_body = self._parse_body_or_single(None)
        return ast.If(loc=tok.loc, cond=cond, then_body=then_body, else_body=else_body)

    def _parse_while(self) -> ast.While:
        tok = self._expect(TokenKind.KW_WHILE)
        cond = self.parse_expression()
        body = self._parse_body_or_single(TokenKind.KW_DO)
        return ast.While(loc=tok.loc, cond=cond, body=body)

    def _parse_loop(self) -> ast.For:
        tok = self._advance()  # for / forall / coforall
        loop_kind = tok.text
        is_param = False
        if self._at(TokenKind.KW_PARAM):
            self._advance()
            is_param = True

        indices: list[ast.LoopIndex] = []
        if self._accept(TokenKind.LPAREN):
            while True:
                itok = self._expect(TokenKind.IDENT, "loop index")
                indices.append(ast.LoopIndex(name=itok.text, loc=itok.loc))
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RPAREN)
        else:
            itok = self._expect(TokenKind.IDENT, "loop index")
            indices.append(ast.LoopIndex(name=itok.text, loc=itok.loc))

        self._expect(TokenKind.KW_IN)

        iterables: list[ast.Expr] = []
        zippered = False
        if self._at(TokenKind.KW_ZIP):
            zippered = True
            self._advance()
            self._expect(TokenKind.LPAREN)
            while True:
                iterables.append(self.parse_expression())
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RPAREN)
        else:
            iterables.append(self.parse_expression())

        if zippered and len(indices) != len(iterables):
            raise ParseError(
                f"zippered loop has {len(indices)} indices but "
                f"{len(iterables)} iterands",
                tok.loc,
            )

        # Optional `with (+ reduce x, min reduce y, ...)` intent clause.
        reduce_intents: list[tuple[str, str]] = []
        if self._accept(TokenKind.KW_WITH):
            self._expect(TokenKind.LPAREN)
            while True:
                op_tok = self._peek()
                if op_tok.kind in (TokenKind.PLUS, TokenKind.STAR) or (
                    op_tok.kind is TokenKind.IDENT
                    and op_tok.text in ("min", "max")
                ):
                    op = self._advance().text
                else:
                    raise ParseError(
                        "expected a reduction operator (+, *, min, max) "
                        "in with-clause",
                        op_tok.loc,
                    )
                self._expect(TokenKind.KW_REDUCE)
                name = self._expect(TokenKind.IDENT, "reduced variable").text
                reduce_intents.append((op, name))
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RPAREN)
            if loop_kind == "for":
                raise ParseError(
                    "with-clauses apply to parallel loops only", tok.loc
                )

        body = self._parse_body_or_single(TokenKind.KW_DO)
        return ast.For(
            loc=tok.loc,
            kind=loop_kind,
            indices=indices,
            iterables=iterables,
            body=body,
            is_param=is_param,
            zippered=zippered,
            reduce_intents=reduce_intents,
        )

    def _parse_select(self) -> ast.Select:
        tok = self._expect(TokenKind.KW_SELECT)
        subject = self.parse_expression()
        self._expect(TokenKind.LBRACE)
        whens: list[ast.When] = []
        otherwise: ast.Block | None = None
        while not self._at(TokenKind.RBRACE):
            wtok = self._peek()
            if wtok.kind is TokenKind.KW_WHEN:
                self._advance()
                values = [self.parse_expression()]
                while self._accept(TokenKind.COMMA):
                    values.append(self.parse_expression())
                body = self._parse_body_or_single(TokenKind.KW_DO)
                whens.append(ast.When(values=values, body=body, loc=wtok.loc))
            elif wtok.kind is TokenKind.KW_OTHERWISE:
                self._advance()
                otherwise = self._parse_body_or_single(TokenKind.KW_DO)
            else:
                raise ParseError(
                    "expected 'when' or 'otherwise' in select body", wtok.loc
                )
        self._expect(TokenKind.RBRACE)
        return ast.Select(loc=tok.loc, subject=subject, whens=whens, otherwise=otherwise)

    def _parse_expr_or_assign(self) -> ast.Stmt:
        expr = self.parse_expression()
        tok = self._peek()
        if tok.kind in _ASSIGN_OPS:
            op = _ASSIGN_OPS[tok.kind]
            self._advance()
            value = self.parse_expression()
            self._expect(TokenKind.SEMI)
            if not isinstance(expr, (ast.Ident, ast.Index, ast.FieldAccess)):
                raise ParseError("invalid assignment target", expr.loc)
            return ast.Assign(loc=expr.loc, target=expr, op=op, value=value)
        self._expect(TokenKind.SEMI)
        return ast.ExprStmt(loc=expr.loc, expr=expr)

    # -- Types -----------------------------------------------------------------

    def parse_type(self) -> ast.TypeExpr:
        tok = self._peek()
        if tok.kind in _SCALAR_TYPE_KWS:
            self._advance()
            width = None
            if self._at(TokenKind.LPAREN):
                self._advance()
                width = int(self._expect(TokenKind.INT_LIT, "bit width").text)
                self._expect(TokenKind.RPAREN)
            return ast.NamedType(loc=tok.loc, name=_SCALAR_TYPE_KWS[tok.kind], width=width)
        if tok.kind is TokenKind.KW_DOMAIN:
            self._advance()
            self._expect(TokenKind.LPAREN)
            # `domain(N)` is a rectangular domain of rank N;
            # `domain(int)` is an associative domain keyed by int.
            if self._at(TokenKind.KW_INT):
                self._advance()
                self._expect(TokenKind.RPAREN)
                return ast.AssocDomainTypeExpr(loc=tok.loc)
            rank = int(self._expect(TokenKind.INT_LIT, "domain rank").text)
            self._expect(TokenKind.RPAREN)
            return ast.DomainTypeExpr(loc=tok.loc, rank=rank)
        if tok.kind is TokenKind.KW_SPARSE:
            self._advance()
            self._expect(TokenKind.KW_SUBDOMAIN, "subdomain")
            self._expect(TokenKind.LPAREN)
            parent = self.parse_expression()
            self._expect(TokenKind.RPAREN)
            return ast.SparseSubdomainTypeExpr(loc=tok.loc, parent=parent)
        if tok.kind is TokenKind.KW_RANGE:
            self._advance()
            return ast.RangeTypeExpr(loc=tok.loc)
        if tok.kind is TokenKind.LBRACKET:
            self._advance()
            # Open array type '[?] T' / '[?, ?] T' (formals whose domain
            # is supplied by the actual, like Chapel's '[?D] T').
            if self._at(TokenKind.QUESTION):
                rank = 0
                while self._accept(TokenKind.QUESTION):
                    rank += 1
                    if not self._accept(TokenKind.COMMA):
                        break
                self._expect(TokenKind.RBRACKET)
                elem = self.parse_type()
                return ast.ArrayTypeExpr(loc=tok.loc, domain=None, elem=elem, open_rank=rank)
            # The bracket holds a domain-valued expression: an identifier,
            # or one or more ranges (an inline domain literal).
            dims = [self.parse_expression()]
            while self._accept(TokenKind.COMMA):
                dims.append(self.parse_expression())
            self._expect(TokenKind.RBRACKET)
            domain: ast.Expr
            if len(dims) == 1 and not isinstance(dims[0], ast.RangeLit):
                domain = dims[0]
            else:
                domain = ast.DomainLit(loc=tok.loc, dims=dims)
            elem = self.parse_type()
            return ast.ArrayTypeExpr(loc=tok.loc, domain=domain, elem=elem)
        if tok.kind is TokenKind.INT_LIT and self._peek(1).kind is TokenKind.STAR:
            count = int(self._advance().text)
            self._expect(TokenKind.STAR)
            elem = self.parse_type()
            return ast.TupleTypeExpr(loc=tok.loc, count=count, elem=elem)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            elems = [self.parse_type()]
            while self._accept(TokenKind.COMMA):
                elems.append(self.parse_type())
            self._expect(TokenKind.RPAREN)
            if len(elems) == 1:
                # Parenthesized grouping, e.g. the element of 8*(4*real).
                return elems[0]
            return ast.TupleTypeExpr(loc=tok.loc, count=None, elem=None, elems=elems)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.NamedType(loc=tok.loc, name=tok.text)
        raise ParseError(f"expected a type, found {tok.text!r}", tok.loc)

    # -- Expressions -------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        if self._at(TokenKind.KW_IF):
            return self._parse_if_expr()
        return self._parse_or()

    def _parse_if_expr(self) -> ast.Expr:
        tok = self._expect(TokenKind.KW_IF)
        cond = self._parse_or()
        self._expect(TokenKind.KW_THEN)
        then_expr = self.parse_expression()
        self._expect(TokenKind.KW_ELSE)
        else_expr = self.parse_expression()
        return ast.IfExpr(loc=tok.loc, cond=cond, then_expr=then_expr, else_expr=else_expr)

    def _parse_or(self) -> ast.Expr:
        lhs = self._parse_and()
        while self._at(TokenKind.OR):
            tok = self._advance()
            rhs = self._parse_and()
            lhs = ast.BinOp(loc=tok.loc, op="||", lhs=lhs, rhs=rhs)
        return lhs

    def _parse_and(self) -> ast.Expr:
        lhs = self._parse_cmp()
        while self._at(TokenKind.AND):
            tok = self._advance()
            rhs = self._parse_cmp()
            lhs = ast.BinOp(loc=tok.loc, op="&&", lhs=lhs, rhs=rhs)
        return lhs

    def _parse_cmp(self) -> ast.Expr:
        lhs = self._parse_range()
        tok = self._peek()
        if tok.kind in _CMP_OPS:
            self._advance()
            rhs = self._parse_range()
            return ast.BinOp(loc=tok.loc, op=_CMP_OPS[tok.kind], lhs=lhs, rhs=rhs)
        return lhs

    def _parse_range(self) -> ast.Expr:
        lhs = self._parse_add()
        tok = self._peek()
        if tok.kind in (TokenKind.DOTDOT, TokenKind.DOTDOTHASH):
            counted = tok.kind is TokenKind.DOTDOTHASH
            self._advance()
            rhs = self._parse_add()
            step = None
            if self._accept(TokenKind.KW_BY):
                step = self._parse_add()
            return ast.RangeLit(loc=tok.loc, lo=lhs, hi=rhs, counted=counted, step=step)
        return lhs

    def _parse_add(self) -> ast.Expr:
        lhs = self._parse_mul()
        while self._peek().kind in _ADD_OPS:
            tok = self._advance()
            rhs = self._parse_mul()
            lhs = ast.BinOp(loc=tok.loc, op=_ADD_OPS[tok.kind], lhs=lhs, rhs=rhs)
        return lhs

    def _parse_mul(self) -> ast.Expr:
        lhs = self._parse_pow()
        while self._peek().kind in _MUL_OPS:
            tok = self._advance()
            rhs = self._parse_pow()
            lhs = ast.BinOp(loc=tok.loc, op=_MUL_OPS[tok.kind], lhs=lhs, rhs=rhs)
        return lhs

    def _parse_pow(self) -> ast.Expr:
        lhs = self._parse_unary()
        if self._at(TokenKind.STARSTAR):
            tok = self._advance()
            rhs = self._parse_pow()  # right associative
            return ast.BinOp(loc=tok.loc, op="**", lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        # Reductions: '+ reduce e', '* reduce e', 'min reduce e', 'max reduce e'.
        if tok.kind in (TokenKind.PLUS, TokenKind.STAR) and (
            self._peek(1).kind is TokenKind.KW_REDUCE
        ):
            op = self._advance().text
            self._expect(TokenKind.KW_REDUCE)
            iterable = self._parse_unary()
            return ast.Reduce(loc=tok.loc, op=op, iterable=iterable)
        if (
            tok.kind is TokenKind.IDENT
            and tok.text in ("min", "max")
            and self._peek(1).kind is TokenKind.KW_REDUCE
        ):
            op = self._advance().text
            self._expect(TokenKind.KW_REDUCE)
            iterable = self._parse_unary()
            return ast.Reduce(loc=tok.loc, op=op, iterable=iterable)
        if tok.kind in (TokenKind.MINUS, TokenKind.NOT, TokenKind.PLUS):
            self._advance()
            operand = self._parse_unary()
            return ast.UnOp(loc=tok.loc, op=tok.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.LBRACKET:
                self._advance()
                indices = [self.parse_expression()]
                while self._accept(TokenKind.COMMA):
                    indices.append(self.parse_expression())
                self._expect(TokenKind.RBRACKET)
                expr = ast.Index(loc=tok.loc, base=expr, indices=indices)
            elif tok.kind is TokenKind.DOT:
                self._advance()
                # `domain` is a keyword but also an array method name.
                if self._at(TokenKind.KW_DOMAIN):
                    name = self._advance().text
                else:
                    name = self._expect(TokenKind.IDENT, "member name").text
                if self._at(TokenKind.LPAREN):
                    self._advance()
                    args: list[ast.Expr] = []
                    while not self._at(TokenKind.RPAREN):
                        args.append(self.parse_expression())
                        if not self._accept(TokenKind.COMMA):
                            break
                    self._expect(TokenKind.RPAREN)
                    expr = ast.MethodCall(loc=tok.loc, receiver=expr, method=name, args=args)
                else:
                    expr = ast.FieldAccess(loc=tok.loc, base=expr, field=name)
            elif (
                tok.kind is TokenKind.LPAREN
                and isinstance(expr, ast.Ident)
            ):
                # Only a bare identifier can be called (no first-class procs).
                self._advance()
                args = []
                while not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    if not self._accept(TokenKind.COMMA):
                        break
                self._expect(TokenKind.RPAREN)
                expr = ast.Call(loc=expr.loc, callee=expr.name, args=args)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        kind = tok.kind
        if kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(loc=tok.loc, value=int(tok.text))
        if kind is TokenKind.REAL_LIT:
            self._advance()
            return ast.RealLit(loc=tok.loc, value=float(tok.text))
        if kind is TokenKind.BOOL_LIT:
            self._advance()
            return ast.BoolLit(loc=tok.loc, value=(tok.text == "true"))
        if kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLit(loc=tok.loc, value=tok.text)
        if kind is TokenKind.IDENT:
            self._advance()
            return ast.Ident(loc=tok.loc, name=tok.text)
        if kind is TokenKind.KW_NEW:
            self._advance()
            name = self._expect(TokenKind.IDENT, "type name").text
            args: list[ast.Expr] = []
            if self._accept(TokenKind.LPAREN):
                while not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    if not self._accept(TokenKind.COMMA):
                        break
                self._expect(TokenKind.RPAREN)
            return ast.New(loc=tok.loc, type_name=name, args=args)
        if kind is TokenKind.LPAREN:
            self._advance()
            first = self.parse_expression()
            if self._at(TokenKind.COMMA):
                elems = [first]
                while self._accept(TokenKind.COMMA):
                    elems.append(self.parse_expression())
                self._expect(TokenKind.RPAREN)
                return ast.TupleLit(loc=tok.loc, elems=elems)
            self._expect(TokenKind.RPAREN)
            return first
        if kind is TokenKind.LBRACE:
            self._advance()
            dims = [self.parse_expression()]
            while self._accept(TokenKind.COMMA):
                dims.append(self.parse_expression())
            self._expect(TokenKind.RBRACE)
            return ast.DomainLit(loc=tok.loc, dims=dims)
        raise ParseError(
            f"unexpected token {tok.text or tok.kind.value!r} in expression", tok.loc
        )


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Lexes and parses ``source`` into a :class:`Program`."""
    return Parser(tokenize(source, filename), filename).parse_program()
