"""The shared retry/backoff schedule (:mod:`repro.resilience.retrying`).

Two call sites depend on this arithmetic staying put: the multi-locale
harness retry loop and the shard supervisor's non-blocking event loop.
These tests pin the contract both read from.
"""

from __future__ import annotations

import pytest

from repro.resilience.retrying import RetryPolicy, backoff_attempts


class TestRetryPolicy:
    def test_budget_is_retries_plus_one(self):
        assert RetryPolicy(max_retries=2).max_attempts == 3
        assert RetryPolicy(max_retries=0).max_attempts == 1

    def test_delay_schedule_doubles(self):
        p = RetryPolicy(max_retries=4, backoff=0.01)
        assert [p.delay(k) for k in range(5)] == [
            0.0, 0.01, 0.02, 0.04, 0.08,
        ]

    def test_attempt_zero_runs_immediately(self):
        assert RetryPolicy(backoff=5.0).delay(0) == 0.0

    def test_allows_boundary(self):
        p = RetryPolicy(max_retries=2)
        assert p.allows(0) and p.allows(1) and p.allows(2)
        assert not p.allows(3)

    def test_zero_retries_means_one_shot(self):
        p = RetryPolicy(max_retries=0)
        assert p.allows(0) and not p.allows(1)

    def test_negative_retries_refused(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_negative_backoff_refused(self):
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-0.1)

    def test_zero_backoff_is_legal(self):
        assert RetryPolicy(backoff=0.0).delay(3) == 0.0


class TestBackoffAttempts:
    def test_yields_every_attempt_and_sleeps_between(self):
        slept: list[float] = []
        attempts = list(
            backoff_attempts(2, 0.01, sleep=slept.append)
        )
        assert attempts == [0, 1, 2]
        assert slept == [0.01, 0.02]

    def test_zero_retries_never_sleeps(self):
        slept: list[float] = []
        assert list(backoff_attempts(0, 1.0, sleep=slept.append)) == [0]
        assert slept == []

    def test_early_break_skips_remaining_sleeps(self):
        slept: list[float] = []
        for attempt in backoff_attempts(5, 1.0, sleep=slept.append):
            if attempt == 1:
                break
        assert slept == [1.0]

    def test_matches_policy_delay(self):
        slept: list[float] = []
        policy = RetryPolicy(max_retries=3, backoff=0.25)
        for attempt in backoff_attempts(3, 0.25, sleep=slept.append):
            pass
        assert slept == [policy.delay(k) for k in range(1, 4)]
