"""Dead-code elimination.

Removes (iterating to fixpoint):

* pure instructions whose results are unused (arithmetic, address
  computations, loads, tuple/domain constructions — even ``makearray``,
  eliding the allocation);
* stores to *dead allocas* — locals whose address is never loaded from
  or escapes — and then the allocas themselves.

This is the pass that makes variables disappear ("variables optimized
out", paper §V footnote): a removed alloca takes its debug binding with
it, so the blame mapping for that variable is gone.
"""

from __future__ import annotations

from ...ir import instructions as I
from ...ir.module import Module

#: Instruction classes with no side effects (removable when unused).
_PURE = (
    I.BinOp,
    I.UnOp,
    I.Cast,
    I.Load,
    I.FieldAddr,
    I.ElemAddr,
    I.TupleElemAddr,
    I.MakeRange,
    I.MakeDomain,
    I.MakeArray,
    I.ArraySlice,
    I.ArrayReindex,
    I.DomainOp,
    I.MakeTuple,
    I.TupleGet,
)


def dead_code_eliminate(module: Module) -> bool:
    changed_any = False
    for fn in module.functions.values():
        while True:
            used: set[int] = set()
            for block in fn.blocks:
                for instr in block.instructions:
                    for op in instr.operands():
                        if isinstance(op, I.Register):
                            used.add(op.rid)

            # Allocas whose address only ever feeds store *targets* are
            # write-only locals: dead.
            loaded_or_escaped: set[int] = set()
            for block in fn.blocks:
                for instr in block.instructions:
                    for op in instr.operands():
                        if not isinstance(op, I.Register):
                            continue
                        if isinstance(instr, I.Store) and op is instr.addr:
                            continue  # pure write target
                        loaded_or_escaped.add(op.rid)

            dead: list[tuple[object, I.Instruction]] = []
            for block in fn.blocks:
                for instr in block.instructions:
                    if instr.is_terminator():
                        continue
                    if isinstance(instr, I.Store):
                        addr = instr.addr
                        if (
                            isinstance(addr, I.Register)
                            and addr.producer is not None
                            and isinstance(addr.producer, I.Alloca)
                            and addr.rid not in loaded_or_escaped
                        ):
                            dead.append((block, instr))
                        continue
                    if isinstance(instr, I.Alloca):
                        if instr.result.rid not in used:
                            dead.append((block, instr))
                        continue
                    if isinstance(instr, _PURE):
                        if instr.result is not None and instr.result.rid not in used:
                            dead.append((block, instr))
            if not dead:
                break
            changed_any = True
            for block, instr in dead:
                block.instructions.remove(instr)  # type: ignore[union-attr]
    return changed_any
