"""Static race detector for ``forall``/``coforall`` bodies.

A parallel loop's outlined body runs concurrently in many tasks.  A
write is a *data race candidate* when its storage root is shared across
tasks — a module global, or a by-reference capture of an enclosing
variable — and the written address does not depend on the task-private
loop index (index-disjoint addressing), and the variable is not
protected by a ``with (op reduce x)`` intent.

The detector reuses the blame pipeline's storage roots
(:mod:`repro.blame.dataflow`) so "what storage does this write touch"
is answered by the exact machinery that attributes PMU samples, and
follows calls out of the task body (depth-limited) with a per-formal
index-dependence binding, so ``update(buf, i)`` writing ``buf[i]`` or a
global at ``[i, j]`` is recognized as disjoint.

Known over-approximations (documented, not bugs): index dependence is
taken as disjointness, so non-injective addressing like ``A[i % 2]``
is not flagged; aliasing through data structures built at runtime
relies on the flow-insensitive root analysis.
"""

from __future__ import annotations

from ..blame.dataflow import DataFlow, VarKey, is_pointer_like
from ..ir import instructions as I
from ..ir.module import Function
from .context import AnalysisContext
from .diagnostics import Finding, Severity
from .passes import AnalysisPass, register_pass

#: How far the detector follows calls out of a task body.
MAX_CALL_DEPTH = 3

_REMEDIATION = (
    "protect the variable with a reduce intent "
    "(`with (+ reduce x)`), make the write index-disjoint, or keep a "
    "task-private copy and combine after the loop"
)


def _caller_visible_writers(df: DataFlow, param) -> set[I.Instruction]:
    """Instructions in a callee that write through formal ``param``
    into *caller-visible* storage.

    ``ref`` formals hold a caller address: every recorded write counts.
    ``in`` formals of pointer-like type (class instances, arrays)
    share the referenced object, so writes along a non-empty path
    (``p.field = ..``) and forwarding calls count — but the callee's
    prologue spill into the formal's home cell (an empty-path store of
    the incoming value) is a local rebinding, not a caller-visible
    write.  Plain-value ``in`` formals never write back.
    """
    fkey = VarKey("formal", param.name)
    out: set[I.Instruction] = set()
    if param.intent == "ref":
        out.update(df.writes.get(fkey, ()))
        for root, instrs in df.path_writes.items():
            if root[0] == fkey:
                out.update(instrs)
    elif is_pointer_like(param.type):
        for root, instrs in df.path_writes.items():
            if root[0] == fkey and len(root[1]) > 0:
                out.update(instrs)
        for w in df.writes.get(fkey, ()):
            if isinstance(w, I.Call):
                out.add(w)
    return out


@register_pass
class RaceDetectorPass(AnalysisPass):
    """Reports conflicting concurrent writes in parallel-loop bodies."""

    name = "forall-race"
    description = "shared-variable writes in forall/coforall tasks"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        seen_bodies: set[str] = set()
        for fn in ctx.module.functions.values():
            for block in fn.blocks:
                for instr in block.instructions:
                    if not isinstance(instr, I.SpawnJoin):
                        continue
                    if instr.outlined in seen_bodies:
                        continue
                    seen_bodies.add(instr.outlined)
                    body = ctx.module.get_function(instr.outlined)
                    if body is not None:
                        findings.extend(_TaskChecker(ctx, body, instr).check())
        return findings


class _TaskChecker:
    """Checks one outlined parallel-loop body for racy writes."""

    def __init__(
        self, ctx: AnalysisContext, body: Function, spawn: I.SpawnJoin
    ) -> None:
        self.ctx = ctx
        self.body = body
        self.spawn = spawn
        self.df = ctx.dataflow(body)
        #: IterValue results that yield the task-private chunk indices.
        self.index_regs = self._chunk_index_regs(body, self.df)
        self.reported: set[tuple[str, str, int]] = set()
        self.findings: list[Finding] = []

    # -- entry ---------------------------------------------------------------

    def check(self) -> list[Finding]:
        self._check_function(
            self.body,
            self.df,
            seeds=frozenset(),
            index_regs=self.index_regs,
            depth=0,
        )
        return self.findings

    # -- task-private index discovery ---------------------------------------

    @staticmethod
    def _chunk_index_regs(body: Function, df: DataFlow) -> frozenset[I.Register]:
        """Registers produced by IterValue over the task's chunk(s)."""
        chunk_states: set[I.Register] = set()
        for instr in body.instructions():
            if isinstance(instr, I.IterInit) and any(
                key.kind == "formal" and str(key.ident).startswith("_chunk")
                for key, _ in df.roots_of(instr.iterable)
            ):
                if instr.result is not None:
                    chunk_states.add(instr.result)
        regs: set[I.Register] = set()
        for instr in body.instructions():
            if (
                isinstance(instr, I.IterValue)
                and isinstance(instr.state, I.Register)
                and instr.state in chunk_states
                and instr.result is not None
            ):
                regs.add(instr.result)
        return frozenset(regs)

    # -- index-dependence walk ----------------------------------------------

    def _depends(
        self,
        value: I.Value,
        fn: Function,
        df: DataFlow,
        seeds: frozenset[VarKey],
        index_regs: frozenset[I.Register],
        seen: set[int] | None = None,
    ) -> bool:
        """True when ``value`` is derived from a task-private index: the
        chunk IterValue itself, a cell it was stored into, a seed formal
        (bound to an index-dependent actual at the callsite), or any
        computation over those."""
        if not isinstance(value, I.Register):
            return False
        if value in index_regs:
            return True
        if seen is None:
            seen = set()
        producer = value.producer
        if producer is None:
            # A formal's register: index-dependent iff the binding says so.
            for p in fn.params:
                if p.register is value:
                    return VarKey("formal", p.name) in seeds
            return False
        if producer.iid in seen:
            return False
        seen.add(producer.iid)
        if isinstance(producer, I.Load):
            roots = df.roots_of(producer.addr)
            if any(key in seeds for key, _ in roots):
                return True
            # A load of a local cell carries whatever was stored there:
            # chase the stored values (this is how `i` reaches uses —
            # `store itervalue, %i.addr; ... load %i.addr`).
            for key, _ in roots:
                if key.kind not in ("local", "formal"):
                    continue
                for w in df.writes.get(key, ()):
                    if isinstance(w, I.Store) and self._depends(
                        w.value, fn, df, seeds, index_regs, seen
                    ):
                        return True
            # A load *at* an index-dependent address (A[i]) yields a
            # task-distinct value too.
            return self._depends(
                producer.addr, fn, df, seeds, index_regs, seen
            )
        return any(
            self._depends(op, fn, df, seeds, index_regs, seen)
            for op in producer.operands()
        )

    # -- shared-root classification -----------------------------------------

    def _shared_name(self, key: VarKey) -> str | None:
        """The user-visible name if ``key`` is storage shared across
        tasks (and not reduce-protected), else None."""
        if key.kind == "global":
            name = str(key.ident)
            return None if name in self.body.reduce_vars else name
        if key.kind == "formal":
            name = str(key.ident)
            if name.startswith("_chunk") or name in self.body.reduce_vars:
                return None
            # Ref-capture formals alias one enclosing variable shared by
            # every task.  (This check only applies in the task body
            # itself; callee formals are handled via bindings.)
            return name
        return None

    # -- the sweep -----------------------------------------------------------

    def _check_function(
        self,
        fn: Function,
        df: DataFlow,
        seeds: frozenset[VarKey],
        index_regs: frozenset[I.Register],
        depth: int,
    ) -> None:
        """Scans ``fn`` (the task body at depth 0, callees below) for
        writes to shared storage whose address is not index-disjoint."""
        in_body = depth == 0
        for instr in fn.instructions():
            if isinstance(instr, I.Store):
                self._check_store(instr, fn, df, seeds, index_regs, in_body)
            elif isinstance(instr, I.Call) and not instr.is_builtin:
                self._check_call(instr, fn, df, seeds, index_regs, depth)

    def _check_store(
        self,
        store: I.Store,
        fn: Function,
        df: DataFlow,
        seeds: frozenset[VarKey],
        index_regs: frozenset[I.Register],
        in_body: bool,
    ) -> None:
        shared: list[tuple[VarKey, str]] = []
        for key, _path in df.roots_of(store.addr):
            if key.kind == "global":
                name = str(key.ident)
                if name not in self.body.reduce_vars:
                    shared.append((key, name))
            elif key.kind == "formal" and in_body:
                name = self._shared_name(key)
                if name is not None:
                    shared.append((key, name))
            # Callee formals (not in_body) reached here were already
            # judged at their callsite binding; locals are task-private.
        if not shared:
            return
        if self._depends(store.addr, fn, df, seeds, index_regs):
            return  # index-disjoint addressing
        for key, name in shared:
            self._report(name, key, df, store)

    def _check_call(
        self,
        call: I.Call,
        fn: Function,
        df: DataFlow,
        seeds: frozenset[VarKey],
        index_regs: frozenset[I.Register],
        depth: int,
    ) -> None:
        callee = self.ctx.module.get_function(call.callee)
        if callee is None or depth >= MAX_CALL_DEPTH:
            return
        callee_df = self.ctx.dataflow(callee)
        # Bind each formal's index-dependence from its actual.
        binding: dict[str, bool] = {}
        for param, arg in zip(callee.params, call.args):
            binding[param.name] = self._depends(
                arg, fn, df, seeds, index_regs
            )
        callee_seeds = frozenset(
            VarKey("formal", n) for n, dep in binding.items() if dep
        )

        # 1. Writes the callee makes through its ref/pointer formals
        #    land in the actual's storage.
        for param, arg in zip(callee.params, call.args):
            writers = _caller_visible_writers(callee_df, param)
            if not writers:
                continue
            if binding[param.name]:
                continue  # the whole object is task-distinct
            arg_shared = [
                (key, name)
                for key, name in (
                    (k, self._resolve_shared(k, depth))
                    for k, _ in df.roots_of(arg)
                )
                if name is not None
            ]
            if not arg_shared:
                continue
            # Shared object handed in whole: safe only if every write
            # the callee makes to this formal is index-disjoint under
            # the binding (e.g. `update(buf, i)` writing `buf[i]`).
            if self._formal_writes_disjoint(
                callee, callee_df, param, callee_seeds, depth + 1
            ):
                continue
            for key, name in arg_shared:
                self._report(name, key, df, call)

        # 2. Globals the callee writes directly (or deeper).
        self._check_function(
            callee,
            callee_df,
            seeds=callee_seeds,
            index_regs=frozenset(),
            depth=depth + 1,
        )

    def _resolve_shared(self, key: VarKey, depth: int) -> str | None:
        """Shared-name lookup valid at any depth: globals are always
        shared; formals only count in the task body itself."""
        if key.kind == "global":
            name = str(key.ident)
            return None if name in self.body.reduce_vars else name
        if key.kind == "formal" and depth == 0:
            return self._shared_name(key)
        return None

    def _formal_writes_disjoint(
        self,
        fn: Function,
        df: DataFlow,
        param,
        seeds: frozenset[VarKey],
        depth: int,
    ) -> bool:
        """True when every caller-visible write ``fn`` makes through
        formal ``param`` uses an index-dependent address (given the
        callsite binding)."""
        fkey = VarKey("formal", param.name)
        for w in _caller_visible_writers(df, param):
            if isinstance(w, I.Store):
                if not self._depends(w.addr, fn, df, seeds, frozenset()):
                    return False
            elif isinstance(w, I.Call) and not w.is_builtin:
                if depth >= MAX_CALL_DEPTH:
                    return False  # conservative: can't see that far
                callee = self.ctx.module.get_function(w.callee)
                if callee is None:
                    return False
                callee_df = self.ctx.dataflow(callee)
                # Which callee formals receive storage rooted at fkey,
                # and with what index binding?
                ok = True
                for sub_param, arg in zip(callee.params, w.args):
                    if not any(
                        key == fkey for key, _ in df.roots_of(arg)
                    ):
                        continue
                    if self._depends(arg, fn, df, seeds, frozenset()):
                        continue
                    sub_binding = frozenset(
                        VarKey("formal", p.name)
                        for p, a in zip(callee.params, w.args)
                        if self._depends(a, fn, df, seeds, frozenset())
                    )
                    if not self._formal_writes_disjoint(
                        callee, callee_df, sub_param, sub_binding, depth + 1
                    ):
                        ok = False
                        break
                if not ok:
                    return False
            else:
                # Descriptor/other writes to a shared object from
                # inside a task: not index-disjoint by construction.
                return False
        return True

    # -- reporting -----------------------------------------------------------

    def _report(
        self, name: str, key: VarKey, df: DataFlow, anchor: I.Instruction
    ) -> None:
        dedup = (self.body.name, name, anchor.loc.line)
        if dedup in self.reported:
            return
        self.reported.add(dedup)
        meta = df.var_meta.get(key)
        display = meta.name if meta is not None and not meta.is_temp else name
        self.findings.append(
            Finding(
                rule="forall-race",
                severity=Severity.ERROR,
                message=(
                    f"'{display}' is written by every task of this "
                    f"{self.spawn.kind} without a reduce intent or "
                    "index-disjoint addressing: concurrent writes race"
                ),
                file=anchor.loc.filename,
                line=anchor.loc.line,
                function=self.ctx.source_context(self.body),
                variables=(display,),
                remediation=_REMEDIATION,
                iids=(anchor.iid, self.spawn.iid),
            )
        )
