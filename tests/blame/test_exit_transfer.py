"""Exit-variable and transfer-function unit tests (paper §IV.A)."""

import pytest

from repro.blame.dataflow import RET_KEY, DataFlow, VarKey
from repro.blame.exit_vars import compute_exit_vars
from repro.blame.static_info import ModuleBlameInfo
from repro.blame.transfer import TransferFunction

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src


def analysis(src, fn):
    m = compile_src(src)
    df = DataFlow(m.functions[fn], m)
    return m, df, compute_exit_vars(m.functions[fn], df)


class TestExitVars:
    def test_ref_formal_is_exit(self):
        _m, _df, ev = analysis("proc f(ref r: real) { r = 1.0; }", "f")
        assert ev.is_exit(VarKey("formal", "r"))

    def test_value_scalar_formal_is_not_exit(self):
        _m, _df, ev = analysis("proc f(x: int) { var y = x + 1; }", "f")
        assert not ev.is_exit(VarKey("formal", "x"))

    def test_array_in_formal_is_exit(self):
        # "incoming parameters that are pointers" — arrays qualify.
        _m, _df, ev = analysis("proc f(a: [?] real) { a[0] = 1.0; }", "f")
        assert ev.is_exit(VarKey("formal", "a"))

    def test_class_in_formal_is_exit(self):
        src = "class C { var v: real; }\nproc f(c: C) { c.v = 1.0; }"
        _m, _df, ev = analysis(src, "f")
        assert ev.is_exit(VarKey("formal", "c"))

    def test_globals_always_exit(self):
        src = "var g: int = 0;\nproc f() { g = 1; }"
        _m, _df, ev = analysis(src, "f")
        assert ev.is_exit(VarKey("global", "g"))
        assert VarKey("global", "g") in ev.globals_written

    def test_return_exit_only_when_returning(self):
        _m, _df, ev = analysis("proc f(): int { return 3; }", "f")
        assert ev.has_return and ev.is_exit(RET_KEY)
        _m2, _df2, ev2 = analysis("proc g() { var x = 1; }", "g")
        assert not ev2.has_return

    def test_locals_never_exit(self):
        _m, _df, ev = analysis("proc f() { var local1 = 1; local1 = 2; }", "f")
        local_keys = [k for k in _df.writes if k.kind == "local"]
        assert local_keys
        assert not any(ev.is_exit(k) for k in local_keys)


class TestTransferFunction:
    SRC = """
proc callee(ref t: 3*real, scale: real) {
  t[0] = scale;
}
proc main() {
  var target: 3*real;
  callee(target, 2.0);
}
"""

    def get_callsite(self, m, caller, callee):
        from repro.ir import instructions as I

        return next(
            i
            for i in m.functions[caller].instructions()
            if isinstance(i, I.Call) and i.callee == callee
        )

    def test_map_up_translates_blamed_formal(self):
        m = compile_src(self.SRC)
        df = DataFlow(m.functions["main"], m)
        tf = TransferFunction(df)
        call = self.get_callsite(m, "main", "callee")
        res = tf.map_up(
            call.iid, frozenset({(VarKey("formal", "t"), ())}), False
        )
        names = {df.var_meta[k].name for k, p in res.caller_roots}
        assert names == {"target"}
        assert res.any_exit_blamed

    def test_map_up_unblamed_gives_nothing(self):
        m = compile_src(self.SRC)
        df = DataFlow(m.functions["main"], m)
        tf = TransferFunction(df)
        call = self.get_callsite(m, "main", "callee")
        res = tf.map_up(call.iid, frozenset(), False)
        assert not res.caller_roots
        assert not res.any_exit_blamed

    def test_map_up_composes_paths(self):
        src = """
record Z { var v: real; }
class P { var zs: [?] Z; }
proc callee(p: P) { p.zs[0].v = 1.0; }
var g: [0..1] P;
proc main() {
  callee(g[0]);
}
"""
        m = compile_src(src)
        df = DataFlow(m.functions["main"], m)
        tf = TransferFunction(df)
        call = self.get_callsite(m, "main", "callee")
        inner_path = (("cfield", "zs"), ("index",), ("field", "v"))
        res = tf.map_up(
            call.iid,
            frozenset({(VarKey("formal", "p"), inner_path)}),
            False,
        )
        # composed: g [index] . zs [index] . v  (depth-capped)
        paths = {p for _k, p in res.caller_roots}
        assert any(p and p[0] == ("index",) and ("cfield", "zs") in p for p in paths)

    def test_return_blamed_flag(self):
        m = compile_src(self.SRC)
        df = DataFlow(m.functions["main"], m)
        tf = TransferFunction(df)
        call = self.get_callsite(m, "main", "callee")
        res = tf.map_up(call.iid, frozenset(), True)
        assert res.any_exit_blamed


class TestVariableLinesMap:
    def test_per_function_maps_are_separate(self):
        src = """
var g: int = 0;
proc a() {
  var x = 1;
  g = x;
}
proc b() {
  var x = 2;
  g = x + 1;
}
proc main() { a(); b(); }
"""
        m = compile_src(src)
        info = ModuleBlameInfo(m)
        map_a = info.variable_lines_map("a")
        map_b = info.variable_lines_map("b")
        assert map_a["x"] != map_b["x"]
        assert info.variable_lines_map("nosuch") == {}
