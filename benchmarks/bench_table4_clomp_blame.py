"""E4 — Paper Table IV: CLOMP variables and their blame, including the
hierarchical ``->`` field rows.

Paper: partArray 99.5 %, ->partArray[i] 99.5 %,
->partArray[i].zoneArray[j] 99.0 %, ->partArray[i].zoneArray[j].value
99.0 %, ->partArray[i].residue 12.3 %, remaining_deposit 11.8 %.
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.tables import render_table

PAPER = {
    "partArray": 0.995,
    "->partArray[i]": 0.995,
    "->partArray[i].zoneArray[j]": 0.990,
    "->partArray[i].zoneArray[j].value": 0.990,
    "->partArray[i].residue": 0.123,
    "remaining_deposit": 0.118,
}


def profile():
    return harness.clomp_profile(optimized=False)


def test_table4_clomp_blame(benchmark, record):
    res = run_once(benchmark, profile)
    rep = res.report
    m = {name: rep.blame_of(name) for name in PAPER}

    # The nested structure dominates, at every level of the hierarchy.
    assert m["partArray"] > 0.85
    assert m["->partArray[i]"] > 0.85
    assert m["->partArray[i].zoneArray[j]"] > 0.8
    assert m["->partArray[i].zoneArray[j].value"] > 0.8
    # The hierarchy is consistent: parents >= children.
    assert m["partArray"] >= m["->partArray[i].zoneArray[j].value"] - 1e-9
    # residue / remaining_deposit form the low tier, well separated.
    assert m["->partArray[i].residue"] < 0.5
    assert m["remaining_deposit"] < 0.5
    assert m["->partArray[i].residue"] < m["->partArray[i].zoneArray[j].value"]
    # remaining_deposit lives in update_part (paper's Context column).
    assert rep.row_for("remaining_deposit").context == "update_part"

    rows = [
        [n, f"{100*m[n]:.1f}%", f"{100*PAPER[n]:.1f}%"] for n in PAPER
    ]
    record(
        "table4_clomp_blame",
        render_table(
            ["Name", "Blame (measured)", "Blame (paper)"],
            rows,
            title=f"Table IV — CLOMP blame ({rep.stats.user_samples} samples)",
            aligns=["l", "r", "r"],
        ),
    )
