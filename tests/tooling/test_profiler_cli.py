"""Profiler facade + CLI tests."""

import pytest

from repro.tooling.cli import _parse_config, main as cli_main
from repro.tooling.profiler import Profiler, run_only

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src

SRC = """
config const n: int = 30;
var A: [0..99] real;
proc main() {
  forall i in 0..n-1 { A[i] = sqrt(i * 1.0); }
  writeln("done");
}
"""


class TestProfiler:
    def test_full_pipeline_produces_report(self):
        res = Profiler(SRC, threshold=311).profile()
        assert res.report.rows
        assert res.report.stats.user_samples > 0
        assert res.run_result.output == ["done"]

    def test_accepts_precompiled_module(self):
        m = compile_src(SRC)
        res = Profiler(m, threshold=311).profile()
        assert res.report.rows

    def test_config_passthrough(self):
        res = Profiler(SRC, config={"n": 5}, threshold=311).profile()
        assert res.run_result.output == ["done"]

    def test_fast_mode_runs(self):
        res = Profiler(SRC, threshold=311, fast=True).profile()
        assert res.run_result.output == ["done"]

    def test_min_blame_filter(self):
        all_rows = Profiler(SRC, threshold=311).profile().report.rows
        few_rows = Profiler(SRC, threshold=311, min_blame=0.3).profile().report.rows
        assert len(few_rows) <= len(all_rows)
        assert all(r.blame >= 0.3 for r in few_rows)

    def test_run_only_is_faster_path(self):
        r = run_only(SRC)
        assert r.output == ["done"]

    def test_overhead_stats(self):
        res = Profiler(SRC, threshold=311).profile()
        s = res.report.stats
        assert s.total_raw_samples == s.user_samples + s.runtime_samples
        assert s.dataset_bytes > 0
        assert s.postmortem_seconds >= 0


class TestCLI:
    def test_parse_config(self):
        cfg = _parse_config(["n=5", "scale=1.5", "flag=true", "name=abc"])
        assert cfg == {"n": 5, "scale": 1.5, "flag": True, "name": "abc"}

    def test_parse_config_rejects_garbage(self):
        with pytest.raises(SystemExit):
            _parse_config(["oops"])

    def test_cli_end_to_end(self, tmp_path, capsys):
        f = tmp_path / "prog.chpl"
        f.write_text(SRC)
        rc = cli_main(
            [str(f), "--threads", "4", "--threshold", "311", "--view", "all",
             "--config", "n=10", "--show-output"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Data-centric view" in out
        assert "Code-centric view" in out
        assert "blame point" in out
        assert "done" in out

    def test_cli_fast_flag(self, tmp_path, capsys):
        f = tmp_path / "prog.chpl"
        f.write_text(SRC)
        assert cli_main([str(f), "--fast", "--view", "data"]) == 0
        assert "Data-centric view" in capsys.readouterr().out

    def test_cli_html_output(self, tmp_path, capsys):
        f = tmp_path / "prog.chpl"
        f.write_text(SRC)
        out_html = tmp_path / "report.html"
        rc = cli_main(
            [str(f), "--threads", "4", "--threshold", "311", "--html", str(out_html)]
        )
        assert rc == 0
        assert out_html.exists()
        text = out_html.read_text()
        assert "data-centric (variable blame)" in text
