"""The paper's Fig. 1 five-line example, padded so that the statements
land on source lines 16–20 exactly as printed in the paper.

Used by the Table I experiment (variable→blame-lines map) and the
blame-percentage check (a=2 samples, b=1, c=4 of 4 total in the paper's
walk-through).
"""

from __future__ import annotations

_BODY_LINES = [
    "proc main() {",  # line 14
    "var c: int = 0;",  # line 15 (declared early; written at line 20)
    "var a: int = 2;",  # line 16
    "var b: int = 3;",  # line 17
    "if a < b {",  # line 18
    "a = b + 1; }",  # line 19
    "c = a + b;",  # line 20
    "writeln(c);",
    "}",
]

#: Lines 1–13 are comment padding so the example statements land on the
#: paper's printed line numbers 16–20.
SOURCE = "\n".join(["// Paper Fig. 1 example (see Table I)"] + ["//"] * 12 + _BODY_LINES) + "\n"

#: Paper Table I (as printed). Note: the paper's own formal definition
#: (BlameSet = union of backward slices of writes) also places line 17
#: in a's set — statement 19 ``a = b + 1`` reads b — exactly the
#: mechanism by which c's set contains 16 and 17. The implementation
#: follows the formal definition; see EXPERIMENTS.md E1.
PAPER_TABLE_I = {
    "a": {16, 18, 19},
    "b": {17},
    "c": {16, 17, 18, 19, 20},
}

#: Table I under the paper's formal definition (what this repo computes).
FORMAL_TABLE_I = {
    "a": {16, 17, 18, 19},
    "b": {17},
    "c": {16, 17, 18, 19, 20},
}

#: The four sample line numbers of the paper's walk-through (samples
#: fall on lines 17, 18, 19, 20).
PAPER_SAMPLE_LINES = [17, 18, 19, 20]


def build_source() -> str:
    return SOURCE


def blamed_fractions(sample_lines: list[int], table: dict[str, set[int]]) -> dict[str, float]:
    """BlamePercentage for each variable given sample line numbers —
    the paper's hand computation (a=50 %, b=25 %, c=100 % under its
    printed table; a=75 % under the formal definition)."""
    total = len(sample_lines)
    return {
        var: sum(1 for s in sample_lines if s in lines) / total
        for var, lines in table.items()
    }
