"""Diagnostic errors raised by the mini-Chapel frontend."""

from __future__ import annotations

from .tokens import SourceLocation


class ChapelError(Exception):
    """Base class for all frontend diagnostics.

    Carries an optional :class:`SourceLocation` so callers (and tests)
    can pinpoint the offending source text.
    """

    def __init__(self, message: str, loc: SourceLocation | None = None) -> None:
        self.message = message
        self.loc = loc
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.loc is not None:
            return f"{self.loc}: {self.message}"
        return self.message


class LexError(ChapelError):
    """Raised for unrecognized characters or malformed literals."""


class ParseError(ChapelError):
    """Raised when the token stream does not match the grammar."""


class TypeError_(ChapelError):
    """Raised for type mismatches during semantic checking.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class NameError_(ChapelError):
    """Raised for unresolved or duplicate identifiers."""
