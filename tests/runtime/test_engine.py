"""Fast-engine vs generic-loop equivalence.

The fast-path engine (pre-bound dispatch + overflow-horizon batching)
must be observationally identical to ``_run_quantum_generic``: same
program output, same cycle counts, same instruction counts, and a
bit-for-bit identical sample stream — including under skid and skid
compensation, and in the idle-heavy regimes where threads outnumber
tasks.

Every comparison shares ONE compiled module between both runs:
instruction ids come from a process-global counter, so separately
compiled copies of the same source get offset iids and cannot be
compared sample-for-sample.
"""

import pytest

from repro.compiler.lower import compile_source
from repro.runtime.interpreter import ExecutionError, Interpreter
from repro.sampling.monitor import Monitor
from repro.sampling.pmu import PMUConfig

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))


MIXED_SRC = """
record Pt { var x: real; var y: real; }
var G: [0..63] real;
var total: real;
proc bump(ref p: Pt, s: real) {
  p.x = p.x + s;
  p.y = p.y - s / 2.0;
}
proc main() {
  var p: Pt;
  for i in 0..63 { G[i] = i * 1.5; }
  forall i in 0..63 {
    G[i] = G[i] * 2.0 + i % 3;
  }
  for i in 0..31 {
    bump(p, G[i]);
  }
  var acc = 0.0;
  for (i, g) in zip(0..63, G) { acc = acc + g * (i + 1); }
  total = acc + p.x * p.y;
  writeln(total);
}
"""

SPAWN_HEAVY_SRC = """
var A: [0..127] int;
proc main() {
  coforall t in 0..7 {
    for i in 0..15 { A[t * 16 + i] = t * i; }
  }
  var s = 0;
  for i in 0..127 { s = s + A[i]; }
  writeln(s);
}
"""


def run_with(module, engine, *, config=None, num_threads=4, threshold=None,
             skid=0, skid_compensation=False):
    monitor = Monitor(PMUConfig(threshold=threshold)) if threshold else None
    interp = Interpreter(
        module,
        config=config,
        num_threads=num_threads,
        monitor=monitor,
        sample_threshold=threshold,
        skid=skid,
        skid_compensation=skid_compensation,
        engine=engine,
    )
    result = interp.run()
    stream = (
        [(s.thread_id, s.leaf_iid, tuple(s.stack)) for s in monitor.samples]
        if monitor
        else None
    )
    return result, stream


def assert_equivalent(module, **kwargs):
    fast, fast_stream = run_with(module, "fast", **kwargs)
    gen, gen_stream = run_with(module, "generic", **kwargs)
    assert fast.output == gen.output
    assert fast.total_cycles == gen.total_cycles
    assert fast.idle_cycles == gen.idle_cycles
    assert fast.busy_cycles == gen.busy_cycles
    assert fast.instructions_executed == gen.instructions_executed
    assert fast_stream == gen_stream


class TestEngineEquivalence:
    def test_mixed_program_no_sampling(self):
        module = compile_source(MIXED_SRC, "mixed.chpl")
        assert_equivalent(module)

    def test_mixed_program_sampled(self):
        module = compile_source(MIXED_SRC, "mixed.chpl")
        assert_equivalent(module, threshold=97)

    def test_sampled_with_skid(self):
        module = compile_source(MIXED_SRC, "mixed.chpl")
        assert_equivalent(module, threshold=97, skid=3)

    def test_sampled_with_skid_compensation(self):
        module = compile_source(MIXED_SRC, "mixed.chpl")
        assert_equivalent(module, threshold=97, skid=3, skid_compensation=True)

    def test_idle_heavy_many_threads(self):
        # More threads than tasks: most scheduler picks are idle ticks,
        # exercising the batched idle-stretch path and its idle samples.
        module = compile_source(SPAWN_HEAVY_SRC, "spawny.chpl")
        assert_equivalent(module, num_threads=12, threshold=53)

    def test_single_thread(self):
        module = compile_source(SPAWN_HEAVY_SRC, "spawny.chpl")
        assert_equivalent(module, num_threads=1, threshold=101)


class TestEngineErrors:
    def test_division_by_zero_message_matches(self):
        src = """
proc main() {
  var d = 0;
  writeln(1.0 / d);
}
"""
        module = compile_source(src, "err.chpl")
        msgs = []
        for engine in ("fast", "generic"):
            with pytest.raises(ExecutionError) as exc:
                Interpreter(module, num_threads=2, engine=engine).run()
            msgs.append(str(exc.value))
        assert msgs[0] == msgs[1]

    def test_out_of_bounds_message_matches(self):
        src = """
var A: [0..3] int;
proc main() {
  for i in 0..9 { A[i] = i; }
}
"""
        module = compile_source(src, "oob.chpl")
        msgs = []
        for engine in ("fast", "generic"):
            with pytest.raises(ExecutionError) as exc:
                Interpreter(module, num_threads=2, engine=engine).run()
            msgs.append(str(exc.value))
        assert msgs[0] == msgs[1]

    def test_faulting_instruction_counted_identically(self):
        src = """
proc main() {
  var d = 0;
  var x = 5 / d;
}
"""
        module = compile_source(src, "fault.chpl")
        counts = []
        for engine in ("fast", "generic"):
            interp = Interpreter(module, num_threads=2, engine=engine)
            with pytest.raises(ExecutionError):
                interp.run()
            counts.append(interp.instructions_executed)
        assert counts[0] == counts[1]


class TestEngineSelection:
    def test_max_instructions_uses_generic_loop(self):
        # The budget check lives in the generic loop; the fast engine
        # must stand aside when a budget is set.
        module = compile_source("proc main() { writeln(1); }", "tiny.chpl")
        interp = Interpreter(module, num_threads=1, max_instructions=10_000)
        assert interp._fast_engine is None
        assert interp.run().output == ["1"]

    def test_fast_is_default(self):
        module = compile_source("proc main() { writeln(1); }", "tiny2.chpl")
        interp = Interpreter(module, num_threads=1)
        assert interp._fast_engine is not None
        assert interp.run().output == ["1"]
