"""Control-flow graph utilities over IR functions.

Provides predecessor maps, reachability, and reverse-postorder — the
inputs to dominator/post-dominator construction used by the implicit
(control-dependence) blame transfer.
"""

from __future__ import annotations

from .module import BasicBlock, Function


class CFG:
    """Immutable snapshot of a function's control-flow graph."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.blocks: list[BasicBlock] = list(function.blocks)
        self.succs: dict[BasicBlock, list[BasicBlock]] = {
            b: b.successors() for b in self.blocks
        }
        self.preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.blocks}
        for b, succs in self.succs.items():
            for s in succs:
                self.preds[s].append(b)

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks ending in ``ret`` (or with no successors)."""
        return [b for b in self.blocks if not self.succs[b]]

    def reachable(self) -> set[BasicBlock]:
        seen: set[BasicBlock] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.succs[b])
        return seen

    def reverse_postorder(self) -> list[BasicBlock]:
        """Reverse postorder over reachable blocks (entry first)."""
        seen: set[BasicBlock] = set()
        order: list[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            # Iterative DFS to avoid recursion limits on long chains.
            stack: list[tuple[BasicBlock, int]] = [(block, 0)]
            seen.add(block)
            while stack:
                b, i = stack[-1]
                succs = self.succs[b]
                if i < len(succs):
                    stack[-1] = (b, i + 1)
                    s = succs[i]
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, 0))
                else:
                    order.append(b)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order
