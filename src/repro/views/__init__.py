"""Data presentation (paper §IV.D): the GUI's three windows as text —
flat data-centric, code-centric, and the hybrid blame-points view."""

from .code_centric import FunctionProfile, build_code_centric, render_code_centric
from .data_centric import render_data_centric
from .html import render_html_report, write_html_report
from .hybrid import BlamePoint, build_blame_points, render_hybrid
from .tables import pct, render_table

__all__ = [
    "BlamePoint",
    "FunctionProfile",
    "build_blame_points",
    "build_code_centric",
    "pct",
    "render_code_centric",
    "render_data_centric",
    "render_html_report",
    "write_html_report",
    "render_hybrid",
    "render_table",
]
