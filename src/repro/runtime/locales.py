"""Locales — Chapel's abstraction of target-architecture units.

The paper works on a single locale ("In this work, we focus on the
single locale", §II.B); multi-locale tracking through GASNet is its
future work.  We model the same: one :class:`Locale` with a configurable
task-parallelism width, but keep the type plural-ready so the blame
aggregation layer (`repro.blame.aggregate`) can merge per-locale results
the way the paper's step 4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Locale:
    """One compute node."""

    locale_id: int
    max_task_par: int = 12  # the paper's 12-core SMP Xeon

    @property
    def name(self) -> str:
        return f"LOCALE{self.locale_id}"


def single_locale(max_task_par: int = 12) -> Locale:
    return Locale(0, max_task_par)
