"""Blame analysis caching: hits, content-hash invalidation, and result
equality between cached and freshly computed pipelines."""

from repro.blame import cache
from repro.blame.cache import (
    STATS,
    cached_module_blame_info,
    function_fingerprint,
    module_fingerprint,
)
from repro.blame.static_info import ModuleBlameInfo
from repro.compiler.lower import compile_source
from repro.ir import instructions as I
from repro.tooling.profiler import Profiler

SRC = """
var total: real;
proc scale(ref x: real, f: real) {
  x = x * f;
}
proc main() {
  var acc = 0.0;
  for i in 1..40 {
    acc = acc + i * 0.5;
  }
  scale(acc, 2.0);
  total = acc;
  writeln(total);
}
"""


def fresh_module(tag="cache_test.chpl"):
    return compile_source(SRC, tag)


class TestModuleCache:
    def test_second_build_hits(self):
        module = fresh_module()
        STATS.reset()
        info1 = cached_module_blame_info(module)
        assert STATS.module_misses == 1 and STATS.module_hits == 0
        info2 = cached_module_blame_info(module)
        assert STATS.module_hits == 1
        assert info2 is info1

    def test_distinct_modules_do_not_share(self):
        m1 = fresh_module("a.chpl")
        m2 = fresh_module("b.chpl")
        info1 = cached_module_blame_info(m1)
        info2 = cached_module_blame_info(m2)
        assert info1 is not info2
        # Same source, but iids differ: the blame tables must be keyed
        # to each module's own instructions.
        assert info1.functions["main"].blame_sets.by_iid.keys() != (
            info2.functions["main"].blame_sets.by_iid.keys()
        )

    def test_in_place_ir_edit_invalidates(self):
        module = fresh_module()
        info1 = cached_module_blame_info(module)
        fp_before = module_fingerprint(module)

        # Mutate one instruction in place: flip an add into a subtract.
        target = None
        for instr in module.functions["main"].instructions():
            if isinstance(instr, I.BinOp) and instr.op == "+":
                target = instr
                break
        assert target is not None
        target.op = "-"
        assert module_fingerprint(module) != fp_before

        STATS.reset()
        info2 = cached_module_blame_info(module)
        assert STATS.module_misses == 1
        assert info2 is not info1

    def test_options_are_part_of_the_key(self):
        from repro.blame.options import ABLATIONS, FULL

        module = fresh_module()
        full = cached_module_blame_info(module, options=FULL)
        ablated = cached_module_blame_info(
            module, options=ABLATIONS["no-implicit-control"]
        )
        assert full is not ablated


class TestFunctionCache:
    def test_unchanged_functions_hit_after_module_edit(self):
        module = fresh_module()
        cached_module_blame_info(module)

        target = None
        for instr in module.functions["main"].instructions():
            if isinstance(instr, I.BinOp) and instr.op == "+":
                target = instr
                break
        target.op = "-"

        STATS.reset()
        cached_module_blame_info(module)
        # main was re-analyzed; untouched functions (scale, writeln
        # wrappers, global init) came from their per-function caches.
        assert STATS.function_misses >= 1
        assert STATS.function_hits >= 1

    def test_function_fingerprint_sensitive_to_extras(self):
        # ``counted`` does not appear in an instruction's rendering, but
        # it changes range semantics — the fingerprint must cover it.
        module = compile_source(
            """
var A: [0..15] real;
proc main() {
  forall i in 0..15 { A[i] = i * 2.0; }
  writeln(A[3]);
}
""",
            "extras.chpl",
        )
        for fn in module.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, I.MakeRange):
                    fp = function_fingerprint(fn)
                    instr.counted = not instr.counted
                    assert function_fingerprint(fn) != fp
                    return
        raise AssertionError("no MakeRange anywhere in module")


class TestCachedResultsMatchFresh:
    def test_blame_tables_identical(self):
        module = fresh_module()
        cached = cached_module_blame_info(module)
        fresh = ModuleBlameInfo(module)
        for name, fresh_info in fresh.functions.items():
            cached_info = cached.functions[name]
            assert cached_info.blame_sets.by_var == fresh_info.blame_sets.by_var
            assert cached_info.blame_sets.by_iid == fresh_info.blame_sets.by_iid
            assert cached_info.exit_vars == fresh_info.exit_vars

    def test_repeated_profiles_identical(self):
        kwargs = dict(
            filename="cache_prof.chpl", num_threads=4, threshold=997
        )
        r1 = Profiler(SRC, **kwargs).profile()
        r2 = Profiler(SRC, **kwargs).profile()
        assert r2.module is r1.module  # compile cache shares the module
        assert r1.run_result.output == r2.run_result.output
        s1 = [(s.thread_id, s.leaf_iid, tuple(s.stack)) for s in r1.monitor.samples]
        s2 = [(s.thread_id, s.leaf_iid, tuple(s.stack)) for s in r2.monitor.samples]
        assert s1 == s2
        rows1 = [(r.context, r.name, r.samples) for r in r1.report.rows]
        rows2 = [(r.context, r.name, r.samples) for r in r2.report.rows]
        assert rows1 == rows2
