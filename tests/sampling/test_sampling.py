"""Sampling substrate tests: PMU threshold behavior, monitor records,
overhead accounting, address resolution."""

import pytest

from repro.sampling.monitor import Monitor, STACKWALK_CYCLES
from repro.sampling.pmu import (
    DEFAULT_THRESHOLD,
    PAPER_THRESHOLD,
    PMUConfig,
    is_prime,
    pick_prime_threshold,
)
from repro.sampling.stackwalk import StackResolver

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src, profile_src

WORK = """
var A: [0..59] real;
proc kernel() {
  forall i in 0..59 { A[i] = sqrt(i * 1.0) + i * 0.5; }
}
proc main() { kernel(); }
"""


class TestPMU:
    def test_default_threshold_is_prime(self):
        assert is_prime(DEFAULT_THRESHOLD)
        assert is_prime(PAPER_THRESHOLD)

    def test_pick_prime(self):
        assert pick_prime_threshold(100) == 101
        assert is_prime(pick_prime_threshold(10_000))

    def test_is_prime_basics(self):
        assert [n for n in range(20) if is_prime(n)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PMUConfig(threshold=0)


class TestSamplingDensity:
    def test_threshold_controls_sample_count(self):
        dense = profile_src(WORK, threshold=199)
        sparse = profile_src(WORK, threshold=1999)
        assert dense.monitor.n_samples > sparse.monitor.n_samples * 3

    def test_sample_count_roughly_cycles_over_threshold(self):
        res = profile_src(WORK, threshold=499)
        cycles = res.run_result.total_cycles
        expected = cycles / 499
        assert 0.5 * expected <= res.monitor.n_samples <= 1.5 * expected

    def test_deterministic_sample_stream(self):
        # Same compiled module, two monitored runs → identical streams.
        # (Recompiling would renumber instruction ids, so share the
        # module, like re-running one binary.)
        from repro.tooling.profiler import Profiler

        module = compile_src(WORK)
        a = Profiler(module, num_threads=4, threshold=499).profile()
        b = Profiler(module, num_threads=4, threshold=499).profile()
        sa = [(s.thread_id, s.leaf_iid, s.stack) for s in a.monitor.samples]
        sb = [(s.thread_id, s.leaf_iid, s.stack) for s in b.monitor.samples]
        assert sa == sb


class TestMonitor:
    def test_samples_have_indices_in_order(self):
        res = profile_src(WORK, threshold=499)
        idx = [s.index for s in res.monitor.samples]
        assert idx == list(range(len(idx)))

    def test_overhead_accounting(self):
        res = profile_src(WORK, threshold=499)
        ov = res.monitor.overhead
        assert ov.n_samples == res.monitor.n_samples
        assert ov.per_walk() == STACKWALK_CYCLES

    def test_dataset_size_grows_with_samples(self):
        dense = profile_src(WORK, threshold=199)
        sparse = profile_src(WORK, threshold=1999)
        assert dense.monitor.dataset_size_bytes() > sparse.monitor.dataset_size_bytes()

    def test_user_samples_excludes_idle(self):
        res = profile_src(WORK, threshold=211, num_threads=12)
        assert all(not s.is_idle for s in res.monitor.user_samples())


class TestStackResolver:
    def test_resolves_to_file_line(self):
        res = profile_src(WORK, threshold=499)
        resolver = StackResolver(res.module)
        for s in res.monitor.user_samples()[:10]:
            frames = resolver.resolve_stack(s.stack)
            leaf = frames[0]
            assert leaf.filename == "test.chpl"
            assert leaf.line > 0

    def test_runtime_frames_flagged(self):
        m = compile_src("proc main() { }")
        resolver = StackResolver(m)
        f = resolver.resolve_entry("__sched_yield", -1)
        assert f.is_runtime and f.line == 0

    def test_unknown_iid(self):
        m = compile_src("proc main() { }")
        f = StackResolver(m).resolve_entry("ghost", 10**9)
        assert f.filename == "<unknown>"

    def test_stack_leaf_is_sampled_function(self):
        res = profile_src(WORK, threshold=499)
        for s in res.monitor.user_samples():
            assert s.leaf_function == s.stack[0][0]
            assert s.leaf_iid == s.stack[0][1]
