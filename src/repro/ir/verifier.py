"""IR structural verifier.

Run after lowering and after every optimization pass (the ``--fast``
pipeline) to catch malformed IR early: the blame analysis and the
interpreter both assume these invariants.
"""

from __future__ import annotations

from .instructions import Alloca, Br, CBr, Instruction, Register, Ret
from .module import Function, Module


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def verify_function(f: Function, module: Module | None = None) -> None:
    if not f.blocks:
        raise VerificationError(f"{f.name}: function has no blocks")

    seen_iids: set[int] = set()
    defined_regs: set[int] = {p.register.rid for p in f.params}
    block_set = set(f.blocks)

    for block in f.blocks:
        if not block.instructions:
            raise VerificationError(f"{f.name}/{block.label}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator():
            raise VerificationError(
                f"{f.name}/{block.label}: block does not end in a terminator "
                f"(last is {term.opname})"
            )
        for i, instr in enumerate(block.instructions):
            if instr.iid in seen_iids:
                raise VerificationError(
                    f"{f.name}: duplicate instruction id {instr.iid}"
                )
            seen_iids.add(instr.iid)
            if instr.is_terminator() and i != len(block.instructions) - 1:
                raise VerificationError(
                    f"{f.name}/{block.label}: terminator {instr.opname} "
                    f"in mid-block position {i}"
                )
            if instr.result is not None:
                if instr.result.rid in defined_regs:
                    raise VerificationError(
                        f"{f.name}: register {instr.result} defined twice"
                    )
                defined_regs.add(instr.result.rid)
        if isinstance(term, Br) and term.target not in block_set:
            raise VerificationError(
                f"{f.name}/{block.label}: branch to foreign block "
                f"{getattr(term.target, 'label', term.target)}"
            )
        if isinstance(term, CBr):
            for t in (term.then_block, term.else_block):
                if t not in block_set:
                    raise VerificationError(
                        f"{f.name}/{block.label}: cbr to foreign block "
                        f"{getattr(t, 'label', t)}"
                    )

    # Every register operand must be defined somewhere in this function
    # (we don't enforce dominance — the -O0 style lowering guarantees it
    # structurally, and allocas all sit in the entry block).
    for block in f.blocks:
        for instr in block.instructions:
            for op in instr.operands():
                if isinstance(op, Register) and op.rid not in defined_regs:
                    raise VerificationError(
                        f"{f.name}: use of undefined register {op} in "
                        f"[{instr.iid}] {instr}"
                    )

    # Non-void functions must return a value on every ret.
    from ..chapel.types import VoidType

    if not isinstance(f.return_type, VoidType):
        for block in f.blocks:
            term = block.instructions[-1]
            if isinstance(term, Ret) and term.value is None:
                raise VerificationError(
                    f"{f.name}: ret without value in non-void function"
                )


def verify_module(module: Module) -> None:
    """Verifies every function plus inter-function references."""
    for f in module.functions.values():
        verify_function(f, module)
    from .instructions import Call, SpawnJoin

    for f, instr in module.all_instructions():
        if isinstance(instr, Call) and not instr.is_builtin:
            if instr.callee not in module.functions:
                raise VerificationError(
                    f"{f.name}: call to unknown function {instr.callee!r}"
                )
        if isinstance(instr, SpawnJoin):
            if instr.outlined not in module.functions:
                raise VerificationError(
                    f"{f.name}: spawn of unknown outlined function "
                    f"{instr.outlined!r}"
                )
