"""Static HTML report — the closest analogue of the paper's GUI
(Fig. 3): the flat data-centric and code-centric windows side by side,
with the hybrid blame-point view below.

Single self-contained file, no external assets::

    from repro.views.html import write_html_report
    write_html_report("report.html", result)
"""

from __future__ import annotations

import html

from ..blame.report import BlameReport
from .adaptive import adaptive_lines
from .code_centric import build_code_centric
from .degradation import degradation_lines
from .hybrid import build_blame_points

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
.columns { display: flex; gap: 2em; flex-wrap: wrap; }
.pane { flex: 1; min-width: 24em; }
table { border-collapse: collapse; width: 100%; font-size: 0.85em; }
th, td { text-align: left; padding: 0.25em 0.6em; }
th { border-bottom: 2px solid #444; }
tr:nth-child(even) { background: #f0f0f4; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { display: inline-block; height: 0.7em; background: #4a6fa5;
       vertical-align: baseline; margin-right: 0.4em; }
.temp { color: #999; }
.degraded { border-left: 4px solid #c0392b; padding-left: 1em;
            margin-top: 1.4em; }
.adaptive { border-left: 4px solid #2e86ab; padding-left: 1em;
            margin-top: 1.4em; }
footer { margin-top: 2em; font-size: 0.8em; color: #777; }
"""


def _esc(s: object) -> str:
    return html.escape(str(s))


def _blame_rows_html(report: BlameReport, top: int, min_blame: float) -> str:
    rows = []
    for r in report.rows:
        if r.blame < min_blame:
            continue
        bar = f'<span class="bar" style="width:{max(1, int(90 * r.blame))}px"></span>'
        rows.append(
            "<tr>"
            f"<td>{_esc(r.name)}</td>"
            f"<td>{_esc(r.type_str)}</td>"
            f'<td class="num">{bar}{100 * r.blame:.1f}%</td>'
            f"<td>{_esc(r.context)}</td>"
            "</tr>"
        )
        if len(rows) >= top:
            break
    return "\n".join(rows)


def render_html_report(result, top: int = 25, min_blame: float = 0.005) -> str:
    """Renders a ProfileResult as a self-contained HTML page."""
    report = result.report
    profiles = build_code_centric(result.module, result.postmortem)
    total = result.postmortem.n_user or 1

    code_rows = "\n".join(
        "<tr>"
        f"<td>{_esc(p.name)}</td>"
        f'<td class="num">{p.flat}</td>'
        f'<td class="num">{100 * p.flat / total:.1f}%</td>'
        f'<td class="num">{p.cumulative}</td>'
        f'<td class="num">{100 * p.cumulative / total:.1f}%</td>'
        "</tr>"
        for p in profiles[:top]
    )

    points_html = []
    for point in build_blame_points(report, min_blame=min_blame)[:8]:
        inner = "\n".join(
            "<tr>"
            f"<td>{_esc(r.name)}</td><td>{_esc(r.type_str)}</td>"
            f'<td class="num">{100 * r.blame:.1f}%</td></tr>'
            for r in point.rows[:8]
        )
        points_html.append(
            f"<h2>blame point: {_esc(point.context)}</h2>"
            "<table><tr><th>Name</th><th>Type</th><th>Blame</th></tr>"
            f"{inner}</table>"
        )

    stats = report.stats
    notes = degradation_lines(report)
    degradation_html = (
        '<div class="degraded"><h2>degraded telemetry</h2><ul>'
        + "".join(f"<li>{_esc(n.lstrip('! '))}</li>" for n in notes)
        + "</ul></div>"
        if notes
        else ""
    )
    trail = getattr(result, "adaptive", None)
    if trail is not None and hasattr(trail, "as_dict"):
        trail = trail.as_dict()
    a_notes = adaptive_lines(trail)
    adaptive_html = (
        '<div class="adaptive"><h2>adaptive collection</h2><ul>'
        + "".join(f"<li>{_esc(n.lstrip('~ '))}</li>" for n in a_notes)
        + "</ul></div>"
        if a_notes
        else ""
    )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>blame profile — {_esc(report.program)}</title>
<style>{_STYLE}</style></head>
<body>
<h1>Data-centric profile: {_esc(report.program)}</h1>
<div class="columns">
<div class="pane">
<h2>code-centric (stacks glued)</h2>
<table>
<tr><th>Function</th><th>Flat</th><th>Flat%</th><th>Cum</th><th>Cum%</th></tr>
{code_rows}
</table>
</div>
<div class="pane">
<h2>data-centric (variable blame)</h2>
<table>
<tr><th>Name</th><th>Type</th><th>Blame</th><th>Context</th></tr>
{_blame_rows_html(report, top, min_blame)}
</table>
</div>
</div>
{"".join(points_html)}
{degradation_html}
{adaptive_html}
<footer>
{stats.total_raw_samples} raw samples ({stats.user_samples} user,
{stats.runtime_samples} runtime) · simulated wall
{stats.wall_seconds:.5f}s · dataset {stats.dataset_bytes} bytes
</footer>
</body></html>
"""


def write_html_report(path: str, result, top: int = 25, min_blame: float = 0.005) -> str:
    text = render_html_report(result, top=top, min_blame=min_blame)
    with open(path, "w") as f:
        f.write(text)
    return path
