"""The IR interpreter: executes a module under the cost model, driving
the cooperative tasking layer and (optionally) a sampling monitor.

Execution is fully deterministic: the discrete-event scheduler always
advances the lowest-clock thread, the run queue is FIFO, and the PMU
overflow check is exact — so repeated runs produce identical sample
streams (a property the tests assert; it also makes Table/Fig
regeneration reproducible, unlike the paper's hardware runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chapel.types import RecordType
from ..ir import instructions as I
from ..ir.module import Function, Module
from .builtins import BUILTINS, ProgramHalt
from .costmodel import CLOCK_HZ, CostModel, DEFAULT_COST_MODEL
from .memory import Heap
from .tasking import (
    SCHED_YIELD,
    Frame,
    Scheduler,
    SpawnRecord,
    Task,
    chunk_iteration_space,
)
from .values import (
    ArrayChunk,
    ArrayValue,
    AssociativeDomainValue,
    ClassValue,
    DomainChunk,
    DomainValue,
    RangeValue,
    RecordValue,
    RuntimeError_,
    SparseDomainValue,
    TupleValue,
    copy_value,
    default_value,
    value_slots,
)


class ExecutionError(RuntimeError_):
    """A runtime error annotated with source location and call stack."""

    def __init__(self, message: str, loc: object, stack: list[str]) -> None:
        self.loc = loc
        self.stack = stack
        super().__init__(f"{loc}: {message}\n  in " + " <- ".join(stack))


class IterState:
    """Iterator over a range/domain/array (or a chunk thereof)."""

    __slots__ = ("kind", "pos", "end", "payload", "zippered")

    def __init__(self, kind: str, pos: int, end: int, payload: object, zippered: bool) -> None:
        self.kind = kind  # "range" | "domain" | "array"
        self.pos = pos  # linear position, pre-incremented by iter_next
        self.end = end  # inclusive
        self.payload = payload
        self.zippered = zippered


@dataclass
class RunResult:
    """Outcome of one program execution."""

    output: list[str]
    wall_seconds: float
    total_cycles: float
    idle_cycles: float
    busy_cycles: float
    instructions_executed: int
    heap: Heap
    halted: bool = False
    halt_message: str = ""

    @property
    def cpu_utilization(self) -> float:
        total = self.busy_cycles + self.idle_cycles
        return self.busy_cycles / total if total else 1.0


def _idiv(a: int, b: int) -> int:
    """C/Chapel-style integer division (truncate toward zero)."""
    if b == 0:
        raise RuntimeError_("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a: int, b: int) -> int:
    if b == 0:
        raise RuntimeError_("integer modulo by zero")
    return a - _idiv(a, b) * b


class Interpreter:
    """Executes a :class:`Module` and reports timing/allocation stats.

    ``monitor`` (if given) receives ``take_sample(thread, task, stack,
    iid)`` on every PMU overflow — see ``repro.sampling``.
    """

    def __init__(
        self,
        module: Module,
        config: dict[str, object] | None = None,
        num_threads: int = 12,
        cost_model: CostModel | None = None,
        monitor: object | None = None,
        sample_threshold: float | None = None,
        quantum: int = 64,
        max_instructions: int | None = None,
        skid: int = 0,
        skid_compensation: bool = False,
        engine: str = "fast",
    ) -> None:
        self.module = module
        self.config = dict(config or {})
        self.num_threads = num_threads
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.monitor = monitor
        self.sample_threshold = sample_threshold
        self.quantum = quantum
        self.max_instructions = max_instructions
        #: PMU skid: the sampled IP lands `skid` instructions after the
        #: overflow point (real PMUs overshoot; the paper defers "skid
        #: compensation" to future work — implemented here as an
        #: extension). With ``skid_compensation`` the monitor receives
        #: the precise overflow-time stack instead (PEBS-style).
        self.skid = skid
        self.skid_compensation = skid_compensation
        #: Pending skidded samples per thread id: (countdown,
        #: precise_stack, precise_iid, task).
        self._pending_skid: dict[int, list] = {}

        self.heap = Heap()
        self.scheduler = Scheduler(num_threads)
        self.output: list[str] = []
        self._last_write_complete = True
        self.globals_store: dict[str, list] = {}
        self.instructions_executed = 0
        self._penalties: dict[str, float] = {}
        self._spawn_records: dict[int, SpawnRecord] = {}
        self._main_task: Task | None = None
        self._pending_entry: list[Function] = []
        #: Optional per-event-loop-iteration callback (``hook(self)``),
        #: fired at the top of every scheduler iteration — the slice
        #: machinery's safe point for checkpointing and for unwinding a
        #: worker's run at its stop boundary (see ``runtime.checkpoint``).
        self._slice_hook = None

        self._dispatch = {
            I.Alloca: self._ex_alloca,
            I.Load: self._ex_load,
            I.Store: self._ex_store,
            I.FieldAddr: self._ex_field_addr,
            I.ElemAddr: self._ex_elem_addr,
            I.TupleElemAddr: self._ex_tuple_elem_addr,
            I.BinOp: self._ex_binop,
            I.UnOp: self._ex_unop,
            I.Cast: self._ex_cast,
            I.Call: self._ex_call,
            I.Ret: self._ex_ret,
            I.Br: self._ex_br,
            I.CBr: self._ex_cbr,
            I.MakeRange: self._ex_make_range,
            I.MakeDomain: self._ex_make_domain,
            I.MakeSparseDomain: self._ex_make_sparse_domain,
            I.MakeAssocDomain: self._ex_make_assoc_domain,
            I.MakeArray: self._ex_make_array,
            I.ArraySlice: self._ex_array_slice,
            I.ArrayReindex: self._ex_array_reindex,
            I.DomainOp: self._ex_domain_op,
            I.MakeTuple: self._ex_make_tuple,
            I.TupleGet: self._ex_tuple_get,
            I.NewObject: self._ex_new_object,
            I.IterInit: self._ex_iter_init,
            I.IterNext: self._ex_iter_next,
            I.IterValue: self._ex_iter_value,
            I.SpawnJoin: self._ex_spawn_join,
        }

        #: Execution engine: "fast" compiles per-block plans of
        #: pre-bound step closures (see ``engine.py``); "generic" is the
        #: reference dict-dispatch loop.  Both produce bit-identical
        #: results (a tested invariant).  The fast engine does not
        #: support instruction budgets, so ``max_instructions`` forces
        #: the generic loop.
        self.engine = engine
        self._fast_engine = None
        if engine == "fast" and max_instructions is None:
            from .engine import FastEngine

            self._fast_engine = FastEngine(self)

    # -- public API ------------------------------------------------------------

    def run(self) -> RunResult:
        """Runs module init then ``main`` (if present) to completion."""
        entry = self.module.global_init
        if entry is None:
            raise RuntimeError_("module has no init function")
        self._pending_entry = []
        if self.module.main is not None:
            self._pending_entry.append(self.module.main)
        frame = Frame(entry, None, None)
        frame.penalty = self._penalty(entry)
        task = Task(
            frame, is_main=True, task_id=self.scheduler.next_task_id()
        )
        self._main_task = task
        self.scheduler.enqueue(task)

        halted = False
        halt_message = ""
        try:
            self._event_loop(task)
        except ProgramHalt as h:
            halted = True
            halt_message = str(h)
        return self.build_run_result(halted=halted, halt_message=halt_message)

    # -- slice collection (see runtime/checkpoint.py) --------------------------

    def checkpoint(self) -> bytes:
        """Serializes the full resumable run state (scheduler, heap,
        globals, spawn records, pending entries/skids — one consistent
        object graph including the module) as an opaque blob a fresh
        process can :meth:`resume` from.  Only meaningful at an
        event-loop safe point (the slice hook); calling it mid-quantum
        would capture a half-applied instruction."""
        from .checkpoint import snapshot

        return snapshot(self)

    @classmethod
    def resume(
        cls,
        blob: bytes,
        monitor: object | None = None,
        sample_threshold: float | None = None,
        cost_model: CostModel | None = None,
        quantum: int = 64,
        skid: int = 0,
        skid_compensation: bool = False,
        engine: str = "fast",
    ) -> "Interpreter":
        """Reconstructs an interpreter from a :meth:`checkpoint` blob.
        The caller supplies the monitor and sampling knobs (they are
        collection policy, not run state — a slice worker brings its
        own per-slice monitor)."""
        from .checkpoint import restore

        return restore(
            blob,
            monitor=monitor,
            sample_threshold=sample_threshold,
            cost_model=cost_model,
            quantum=quantum,
            skid=skid,
            skid_compensation=skid_compensation,
            engine=engine,
        )

    def _install_slice_stop(self, stop_at: int) -> None:
        """Arms the event-loop hook to unwind (via ``SliceStop``) at the
        first safe point where the monitor's *global* stream position
        reaches ``stop_at`` accepted samples.  The condition is a pure
        function of deterministic execution state, so a resumed worker
        cuts at exactly the safe point where the census snapshotted the
        next slice's checkpoint."""
        from .checkpoint import SliceStop

        monitor = self.monitor

        def hook(interp, _mon=monitor, _stop=stop_at):
            if _mon.stream_index >= _stop:
                raise SliceStop(_stop)

        self._slice_hook = hook

    def run_sliced(self, stop_at: int | None = None) -> "RunResult | None":
        """Fresh run that stops at the ``stop_at`` stream boundary.
        Returns the :class:`RunResult` if the program completed first,
        or ``None`` when the slice boundary cut the run."""
        from .checkpoint import SliceStop

        if stop_at is not None:
            self._install_slice_stop(stop_at)
        try:
            return self.run()
        except SliceStop:
            return None
        finally:
            self._slice_hook = None

    def continue_sliced(self, stop_at: int | None = None) -> "RunResult | None":
        """Continues a :meth:`resume`-d run, optionally up to the next
        slice boundary (same return contract as :meth:`run_sliced`)."""
        from .checkpoint import SliceStop

        if self._main_task is None:
            raise RuntimeError_("no resumable run state (not a checkpointed run)")
        if stop_at is not None:
            self._install_slice_stop(stop_at)
        halted = False
        halt_message = ""
        try:
            self._event_loop(self._main_task)
        except SliceStop:
            return None
        except ProgramHalt as h:
            halted = True
            halt_message = str(h)
        finally:
            self._slice_hook = None
        return self.build_run_result(halted=halted, halt_message=halt_message)

    def build_run_result(
        self, halted: bool = False, halt_message: str = ""
    ) -> RunResult:
        """Assembles a :class:`RunResult` from the current scheduler
        state.  ``run()`` calls this at completion; the adaptive driver
        calls it directly after unwinding the event loop early (the
        clocks then reflect exactly the truncated execution).

        Tolerates the immediate-stop edge: a run unwound before any
        thread advanced (or an interpreter whose thread list is empty)
        reports zero time rather than tripping ``max()`` on an empty
        sequence."""
        threads = self.scheduler.threads
        total = sum(t.clock for t in threads)
        idle = sum(t.idle_cycles for t in threads)
        busy = sum(t.busy_cycles for t in threads)
        wall = max((t.clock for t in threads), default=0.0)
        return RunResult(
            output=self.output,
            wall_seconds=wall / CLOCK_HZ,
            total_cycles=total,
            idle_cycles=idle,
            busy_cycles=busy,
            instructions_executed=self.instructions_executed,
            heap=self.heap,
            halted=halted,
            halt_message=halt_message,
        )

    # -- scheduling ------------------------------------------------------------

    def _event_loop(self, main_task: Task) -> None:
        sched = self.scheduler
        pick_thread = sched.pick_thread
        run_queue = sched.run_queue
        idle_cost = self.cost_model.idle_quantum
        threshold = self.sample_threshold
        sampling = threshold is not None and self.monitor is not None
        overflow = self._pmu_overflow
        hook = self._slice_hook
        while main_task.state != "done":
            if hook is not None:
                # Top-of-iteration safe point: every PMU counter is
                # drained below the threshold and no instruction is
                # mid-flight, so a checkpoint taken here (or a SliceStop
                # raised here) cuts between whole scheduler steps.
                hook(self)
            thread = pick_thread()
            if thread.task is None:
                if run_queue:
                    task = run_queue.popleft()
                    task.state = "running"
                    # Causality: the task carries its virtual time; a
                    # thread whose clock lags fast-forwards (it was idle
                    # in the meantime — that time is sampled as idle,
                    # like the explicit __sched_yield ticks).
                    if task.last_clock > thread.clock:
                        delta = task.last_clock - thread.clock
                        thread.idle_cycles += delta
                        thread.clock = task.last_clock
                        self._accrue_pmu(thread, delta, idle=True)
                    thread.task = task
                elif sched.any_running:
                    # Idle stretch: the queue is empty and nothing can
                    # enqueue work until a busy thread runs, so tick
                    # min-clock idle threads (same per-tick bookkeeping
                    # as _idle_tick) until a busy thread is min again.
                    while thread.task is None:
                        thread.clock += idle_cost
                        thread.idle_cycles += idle_cost
                        if sampling:
                            pmu = thread.pmu_counter + idle_cost
                            thread.pmu_counter = pmu
                            if pmu >= threshold:
                                overflow(thread, True)
                        thread = pick_thread()
                else:
                    raise RuntimeError_(
                        "scheduler stalled: no runnable tasks but main not done"
                    )
            self._run_quantum(thread)

    def _idle_tick(self, thread) -> None:
        cost = self.cost_model.idle_quantum
        thread.clock += cost
        thread.idle_cycles += cost
        self._accrue_pmu(thread, cost, idle=True)

    def _run_quantum(self, thread) -> None:
        eng = self._fast_engine
        if eng is not None:
            eng.run_quantum(thread)
        else:
            self._run_quantum_generic(thread)

    def _run_quantum_generic(self, thread) -> None:
        for _ in range(self.quantum):
            task = thread.task
            if task is None:
                return
            frame = task.frame
            if frame is None:
                return
            instr = frame.block.instructions[frame.index]
            self.instructions_executed += 1
            if (
                self.max_instructions is not None
                and self.instructions_executed > self.max_instructions
            ):
                raise self._error(
                    "instruction budget exceeded",
                    frame.block.instructions[frame.index],
                    task,
                )
            handler = self._dispatch.get(type(instr))
            if handler is None:
                raise self._error(f"no handler for {instr.opname}", instr, task)
            try:
                cost = handler(thread, task, frame, instr)
            except ProgramHalt:
                raise
            except ExecutionError:
                raise
            except RuntimeError_ as exc:
                raise self._error(str(exc), instr, task) from exc
            scaled = cost * frame.penalty
            thread.clock += scaled
            thread.busy_cycles += scaled
            task.last_clock = thread.clock
            self._accrue_pmu(thread, scaled, idle=False)
            if self.skid > 0:
                self._deliver_skidded(thread)

    def _accrue_pmu(self, thread, cost: float, idle: bool) -> None:
        if self.sample_threshold is None or self.monitor is None:
            return
        thread.pmu_counter += cost
        if thread.pmu_counter >= self.sample_threshold:
            self._pmu_overflow(thread, idle)

    def _pmu_overflow(self, thread, idle: bool) -> None:
        """Drains due PMU overflows (the slow path: only entered when
        the inline ``>= threshold`` check fires)."""
        while thread.pmu_counter >= self.sample_threshold:
            thread.pmu_counter -= self.sample_threshold
            if idle or thread.task is None:
                self.monitor.take_sample(thread, None, [(SCHED_YIELD, -1)], -1)
            elif self.skid <= 0:
                task = thread.task
                stack = task.stack_walk()
                self.monitor.take_sample(thread, task, stack, stack[0][1])
            else:
                # Skidded delivery: remember the precise overflow point,
                # deliver after `skid` more instructions of this thread.
                task = thread.task
                stack = task.stack_walk()
                self._pending_skid.setdefault(thread.thread_id, []).append(
                    [self.skid, stack, stack[0][1], task]
                )

    def _deliver_skidded(self, thread) -> None:
        """Counts down pending skidded samples; delivers those due."""
        pending = self._pending_skid.get(thread.thread_id)
        if not pending:
            return
        due = []
        for entry in pending:
            entry[0] -= 1
            if entry[0] <= 0:
                due.append(entry)
        if not due:
            return
        self._pending_skid[thread.thread_id] = [
            e for e in pending if e[0] > 0
        ]
        for _, precise_stack, precise_iid, task in due:
            if self.skid_compensation:
                # PEBS-style precise sample: the overflow-time state.
                self.monitor.take_sample(thread, task, precise_stack, precise_iid)
            else:
                cur = thread.task
                if cur is None or cur.frame is None:
                    self.monitor.take_sample(
                        thread, task, precise_stack, precise_iid
                    )
                else:
                    stack = cur.stack_walk()
                    self.monitor.take_sample(thread, cur, stack, stack[0][1])

    def _error(self, message: str, instr, task: Task) -> ExecutionError:
        stack = [f for f, _ in task.stack_walk()] if task.frame else []
        return ExecutionError(message, instr.loc, stack or ["<no stack>"])

    def _penalty(self, fn: Function) -> float:
        p = self._penalties.get(fn.name)
        if p is None:
            n = sum(len(b.instructions) for b in fn.blocks)
            p = self.cost_model.function_penalty(n)
            self._penalties[fn.name] = p
        return p

    # -- operand access -----------------------------------------------------------

    def _val(self, frame: Frame, op: I.Value) -> object:
        if isinstance(op, I.Constant):
            return op.value
        if isinstance(op, I.Register):
            try:
                return frame.regs[op.rid]
            except KeyError:
                raise RuntimeError_(f"register {op} read before definition")
        if isinstance(op, I.GlobalRef):
            box = self.globals_store.get(op.name)
            if box is None:
                box = [default_value(op.type)] if not _needs_none(op.type) else [None]
                self.globals_store[op.name] = box
            return (box, 0)
        raise RuntimeError_(f"unknown operand kind {type(op).__name__}")

    # -- instruction handlers ----------------------------------------------------
    # Each returns the cycle cost; frame.index advances here unless the
    # instruction transfers control.

    def _ex_alloca(self, thread, task, frame, instr: I.Alloca) -> int:
        frame.regs[instr.result.rid] = ([None], 0)
        frame.index += 1
        return self.cost_model.alloca

    def _ex_load(self, thread, task, frame, instr: I.Load) -> int:
        lst, i = self._val(frame, instr.addr)
        v = lst[i]
        frame.regs[instr.result.rid] = v
        frame.index += 1
        return self.cost_model.load

    def _ex_store(self, thread, task, frame, instr: I.Store) -> int:
        value = self._val(frame, instr.value)
        lst, i = self._val(frame, instr.addr)
        cost = self.cost_model.store
        if isinstance(value, (TupleValue, RecordValue)):
            cost += self.cost_model.copy_per_slot * value_slots(value)
            value = copy_value(value)
        lst[i] = value
        frame.index += 1
        return cost

    def _ex_field_addr(self, thread, task, frame, instr: I.FieldAddr) -> int:
        base = self._val(frame, instr.base)
        cost = self.cost_model.field_addr
        if isinstance(base, tuple):
            obj = base[0][base[1]]
        else:
            obj = base
        if obj is None:
            raise RuntimeError_("field access through nil")
        if isinstance(obj, ClassValue):
            cost += self.cost_model.class_field_extra
        if not isinstance(obj, (RecordValue, ClassValue)):
            raise RuntimeError_(
                f"field access on non-record value {type(obj).__name__}"
            )
        frame.regs[instr.result.rid] = (obj.fields, instr.index)
        frame.index += 1
        return cost

    def _ex_elem_addr(self, thread, task, frame, instr: I.ElemAddr) -> int:
        arr = self._val(frame, instr.base)
        if not isinstance(arr, ArrayValue):
            raise RuntimeError_("indexing a non-array value")
        coords = tuple(self._val(frame, ix) for ix in instr.indices)
        frame.regs[instr.result.rid] = (arr.root.data, arr.flat_of(coords))
        frame.index += 1
        cost = self.cost_model.elem_addr
        if any(not isinstance(ix, I.Constant) for ix in instr.indices):
            cost += self.cost_model.elem_addr_dynamic_extra
        if arr.is_reindex:
            cost += self.cost_model.elem_addr_reindex_extra
        if self.heap._live_bytes > self.cost_model.llc_bytes:
            cost += self.cost_model.mem_stall
        return cost

    def _ex_tuple_elem_addr(self, thread, task, frame, instr: I.TupleElemAddr) -> int:
        lst, i = self._val(frame, instr.base)
        tup = lst[i]
        if not isinstance(tup, TupleValue):
            raise RuntimeError_("tuple element access on non-tuple")
        k = self._val(frame, instr.index)
        if not 0 <= k < len(tup.elems):
            raise RuntimeError_(
                f"tuple index {k} out of range 0..{len(tup.elems) - 1}"
            )
        frame.regs[instr.result.rid] = (tup.elems, k)
        frame.index += 1
        cost = self.cost_model.tuple_elem_addr
        if not isinstance(instr.index, I.Constant):
            cost += self.cost_model.tuple_index_dynamic_extra
        return cost

    # scalar/tuple arithmetic -----------------------------------------------------

    def _binop_scalar(self, op: str, a, b):
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if isinstance(a, int) and isinstance(b, int):
                return _idiv(a, b)
            if b == 0:
                raise RuntimeError_("division by zero")
            return a / b
        if op == "%":
            if isinstance(a, int) and isinstance(b, int):
                return _imod(a, b)
            return a % b
        if op == "**":
            return a**b
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "&&":
            return a and b
        if op == "||":
            return a or b
        raise RuntimeError_(f"unknown operator {op!r}")

    def _ex_binop(self, thread, task, frame, instr: I.BinOp) -> int:
        a = self._val(frame, instr.lhs)
        b = self._val(frame, instr.rhs)
        cm = self.cost_model
        if isinstance(a, TupleValue) or isinstance(b, TupleValue):
            if isinstance(a, TupleValue) and isinstance(b, TupleValue):
                if len(a.elems) != len(b.elems):
                    raise RuntimeError_("tuple size mismatch in arithmetic")
                out = TupleValue(
                    [self._binop_scalar(instr.op, x, y) for x, y in zip(a.elems, b.elems)]
                )
                n = len(a.elems)
            elif isinstance(a, TupleValue):
                out = TupleValue([self._binop_scalar(instr.op, x, b) for x in a.elems])
                n = len(a.elems)
            else:
                out = TupleValue([self._binop_scalar(instr.op, a, y) for y in b.elems])
                n = len(b.elems)
            frame.regs[instr.result.rid] = out
            frame.index += 1
            return cm.tuple_op_per_slot * n + cm.make_tuple_base
        result = self._binop_scalar(instr.op, a, b)
        frame.regs[instr.result.rid] = result
        frame.index += 1
        if instr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return cm.cmp_op
        if instr.op == "**":
            return cm.real_pow
        if instr.op == "/" and isinstance(result, float):
            return cm.real_div
        if isinstance(result, float):
            return cm.real_op
        return cm.int_op

    def _ex_unop(self, thread, task, frame, instr: I.UnOp) -> int:
        v = self._val(frame, instr.operand)
        if instr.op == "-":
            if isinstance(v, TupleValue):
                out: object = TupleValue([-x for x in v.elems])
                cost = self.cost_model.tuple_op_per_slot * len(v.elems)
            else:
                out = -v
                cost = self.cost_model.int_op
        elif instr.op == "!":
            out = not v
            cost = self.cost_model.int_op
        else:
            raise RuntimeError_(f"unknown unary op {instr.op!r}")
        frame.regs[instr.result.rid] = out
        frame.index += 1
        return cost

    def _ex_cast(self, thread, task, frame, instr: I.Cast) -> int:
        v = self._val(frame, instr.value)
        from ..chapel.types import IntType, RealType

        ty = instr.result.type
        if isinstance(ty, RealType):
            out: object = float(v)
        elif isinstance(ty, IntType):
            out = int(v)
        else:
            out = v
        frame.regs[instr.result.rid] = out
        frame.index += 1
        return self.cost_model.int_op

    # calls ------------------------------------------------------------------------

    def _ex_call(self, thread, task, frame, instr: I.Call) -> int:
        args = [self._val(frame, a) for a in instr.args]
        if instr.is_builtin:
            impl = BUILTINS.get(instr.callee)
            if impl is None:
                raise RuntimeError_(f"unknown builtin {instr.callee!r}")
            result, cost = impl(self, thread, args)
            if instr.result is not None:
                frame.regs[instr.result.rid] = result
            frame.index += 1
            return self.cost_model.builtin_call + cost
        callee = self.module.get_function(instr.callee)
        if callee is None:
            raise RuntimeError_(f"call to unknown function {instr.callee!r}")
        new_frame = Frame(callee, frame, instr.iid)
        new_frame.penalty = self._penalty(callee)
        for p, a in zip(callee.params, args):
            new_frame.regs[p.register.rid] = a
        # The caller's index stays at the call; it advances on return
        # (so stack walks report the call site while the callee runs).
        task.frame = new_frame
        return self.cost_model.call_overhead

    def _ex_ret(self, thread, task, frame, instr: I.Ret) -> int:
        value = self._val(frame, instr.value) if instr.value is not None else None
        caller = frame.caller
        if caller is None:
            self._finish_task_root(thread, task)
            return self.cost_model.ret
        call_instr = caller.block.instructions[caller.index]
        assert isinstance(call_instr, I.Call)
        if call_instr.result is not None:
            caller.regs[call_instr.result.rid] = value
        caller.index += 1
        task.frame = caller
        return self.cost_model.ret

    def _finish_task_root(self, thread, task: Task) -> None:
        """Root frame returned: run the next entry (main task) or
        complete the worker task and maybe release its joiner."""
        if task.is_main and self._pending_entry:
            nxt = self._pending_entry.pop(0)
            frame = Frame(nxt, None, None)
            frame.penalty = self._penalty(nxt)
            task.frame = frame
            return
        task.frame = None
        task.state = "done"
        thread.task = None
        spawn = task.spawn
        if spawn is not None and not task.is_main:
            spawn.completed += 1
            spawn.completion_clock = max(spawn.completion_clock, thread.clock)
            if spawn.completed >= spawn.n_tasks and spawn.waiter is not None:
                waiter = spawn.waiter
                spawn.waiter = None
                # The join releases when the last worker finishes.
                waiter.last_clock = max(waiter.last_clock, spawn.completion_clock)
                self.scheduler.enqueue(waiter)

    def _ex_br(self, thread, task, frame, instr: I.Br) -> int:
        frame.block = instr.target
        frame.index = 0
        return self.cost_model.br

    def _ex_cbr(self, thread, task, frame, instr: I.CBr) -> int:
        cond = self._val(frame, instr.cond)
        frame.block = instr.then_block if cond else instr.else_block
        frame.index = 0
        return self.cost_model.cbr

    # ranges / domains / arrays ------------------------------------------------------

    def _ex_make_range(self, thread, task, frame, instr: I.MakeRange) -> int:
        lo = self._val(frame, instr.ops[0])
        hi = self._val(frame, instr.ops[1])
        step = self._val(frame, instr.ops[2])
        if instr.counted:
            hi = lo + (hi - 1) * abs(step) if step != 1 else lo + hi - 1
        frame.regs[instr.result.rid] = RangeValue(lo, hi, step)
        frame.index += 1
        return self.cost_model.make_range

    def _ex_make_domain(self, thread, task, frame, instr: I.MakeDomain) -> int:
        dims = tuple(self._val(frame, d) for d in instr.ops)
        if not all(isinstance(d, RangeValue) for d in dims):
            raise RuntimeError_("domain dimensions must be ranges")
        frame.regs[instr.result.rid] = DomainValue(dims)
        frame.index += 1
        return self.cost_model.make_domain

    def _ex_make_sparse_domain(
        self, thread, task, frame, instr: I.MakeSparseDomain
    ) -> int:
        parent = self._val(frame, instr.parent_domain)
        if not isinstance(parent, DomainValue):
            raise RuntimeError_("sparse subdomain parent is not a domain")
        frame.regs[instr.result.rid] = SparseDomainValue(parent)
        frame.index += 1
        return self.cost_model.make_domain

    def _ex_make_assoc_domain(
        self, thread, task, frame, instr: I.MakeAssocDomain
    ) -> int:
        frame.regs[instr.result.rid] = AssociativeDomainValue()
        frame.index += 1
        return self.cost_model.make_domain

    def _ex_make_array(self, thread, task, frame, instr: I.MakeArray) -> int:
        dom = self._val(frame, instr.domain)
        if not isinstance(
            dom, (DomainValue, SparseDomainValue, AssociativeDomainValue)
        ):
            raise RuntimeError_("array domain is not a domain value")
        n = dom.size
        elem_ty = instr.elem_type
        if isinstance(elem_ty, (RecordType,)) or isinstance(
            default_value(elem_ty), (TupleValue, RecordValue)
        ):
            data = [default_value(elem_ty) for _ in range(n)]
            slot_factor = value_slots(data[0]) if n else 1
        else:
            data = [default_value(elem_ty)] * n
            slot_factor = 1
        alloc = self.heap.allocate(
            "array", n * slot_factor, instr.loc, frame.function.name
        )
        arr = ArrayValue(dom, elem_ty, data=data, heap_id=alloc.heap_id)
        if isinstance(dom, (SparseDomainValue, AssociativeDomainValue)):
            # Irregular domains grow; their arrays must grow with them.
            dom.register_array(arr)
        frame.regs[instr.result.rid] = arr
        frame.index += 1
        # Allocation + zero-fill is charged per scalar slot — Chapel
        # array creation (domain registration, default init) is what
        # LULESH's Variable Globalization hoists (paper §V.C).
        return (
            self.cost_model.make_array_base
            + self.cost_model.make_array_per_elem * n * slot_factor
        )

    def _ex_array_slice(self, thread, task, frame, instr: I.ArraySlice) -> int:
        arr = self._val(frame, instr.base)
        dom = self._val(frame, instr.domain)
        if not isinstance(arr, ArrayValue) or not isinstance(dom, DomainValue):
            raise RuntimeError_("bad slice operands")
        frame.regs[instr.result.rid] = arr.slice(dom)
        frame.index += 1
        return self.cost_model.array_slice

    def _ex_array_reindex(self, thread, task, frame, instr: I.ArrayReindex) -> int:
        arr = self._val(frame, instr.base)
        dom = self._val(frame, instr.domain)
        if not isinstance(arr, ArrayValue) or not isinstance(dom, DomainValue):
            raise RuntimeError_("bad reindex operands")
        frame.regs[instr.result.rid] = arr.reindex(dom)
        frame.index += 1
        return self.cost_model.array_reindex

    def _ex_domain_op(self, thread, task, frame, instr: I.DomainOp) -> int:
        base = self._val(frame, instr.base)
        args = [self._val(frame, a) for a in instr.ops[1:]]
        op = instr.op
        out: object
        if op == "size":
            out = base.size
        elif op == "domain":
            if not isinstance(base, ArrayValue):
                raise RuntimeError_(".domain on non-array")
            out = base.domain
        elif op in ("low", "high"):
            if isinstance(base, RangeValue):
                out = base.lo if op == "low" else base.hi
            elif isinstance(base, DomainValue):
                coords = [d.lo if op == "low" else d.hi for d in base.dims]
                out = coords[0] if base.rank == 1 else TupleValue(coords)
            else:
                raise RuntimeError_(f".{op} on {type(base).__name__}")
        elif op == "dim":
            if not isinstance(base, DomainValue):
                raise RuntimeError_(".dim on non-domain")
            out = base.dims[args[0]]
        elif op in ("expand", "translate", "interior"):
            if not isinstance(base, DomainValue):
                raise RuntimeError_(f".{op} on non-domain")
            if len(args) == 1 and isinstance(args[0], TupleValue):
                amounts = tuple(args[0].elems)
            else:
                amounts = tuple(args)
            out = getattr(base, op)(amounts)
        elif op == "insert":
            idx = args[0]
            if isinstance(base, SparseDomainValue):
                coords = (
                    tuple(idx.elems) if isinstance(idx, TupleValue) else (idx,)
                )
                out = base.insert(coords)
            elif isinstance(base, AssociativeDomainValue):
                out = base.insert(idx)
            else:
                raise RuntimeError_(
                    "index insertion on a non-irregular domain"
                )
        else:
            raise RuntimeError_(f"unknown domain op {op!r}")
        frame.regs[instr.result.rid] = out
        frame.index += 1
        return self.cost_model.domain_op

    def _ex_make_tuple(self, thread, task, frame, instr: I.MakeTuple) -> int:
        elems = [copy_value(self._val(frame, e)) for e in instr.ops]
        tup = TupleValue(elems)
        frame.regs[instr.result.rid] = tup
        frame.index += 1
        return (
            self.cost_model.make_tuple_base
            + self.cost_model.make_tuple_per_slot * value_slots(tup)
        )

    def _ex_tuple_get(self, thread, task, frame, instr: I.TupleGet) -> int:
        tup = self._val(frame, instr.tup)
        k = self._val(frame, instr.index)
        if not isinstance(tup, TupleValue):
            raise RuntimeError_("tuple access on non-tuple value")
        if not 0 <= k < len(tup.elems):
            raise RuntimeError_(f"tuple index {k} out of range")
        frame.regs[instr.result.rid] = tup.elems[k]
        frame.index += 1
        cost = self.cost_model.tuple_get
        if not isinstance(instr.index, I.Constant):
            cost += self.cost_model.tuple_index_dynamic_extra
        return cost

    def _ex_new_object(self, thread, task, frame, instr: I.NewObject) -> int:
        rec = self.module.records.get(instr.type_name)
        if rec is None:
            raise RuntimeError_(f"unknown record type {instr.type_name!r}")
        args = [copy_value(self._val(frame, a)) for a in instr.ops]
        fields: list = []
        for i, (_, fty) in enumerate(rec.fields):
            if i < len(args):
                fields.append(args[i])
            else:
                fields.append(default_value(fty))
        cm = self.cost_model
        if rec.is_class:
            nslots = sum(value_slots(f) for f in fields) if fields else 1
            alloc = self.heap.allocate(
                "object", nslots, instr.loc, frame.function.name
            )
            obj: object = ClassValue(rec, fields, heap_id=alloc.heap_id)
            cost = cm.new_object_base + cm.new_object_per_field * len(fields)
        else:
            obj = RecordValue(rec, fields)
            cost = cm.new_record_base + cm.new_record_per_field * len(fields)
        frame.regs[instr.result.rid] = obj
        frame.index += 1
        return cost

    # iterators -----------------------------------------------------------------------

    def _ex_iter_init(self, thread, task, frame, instr: I.IterInit) -> int:
        it = self._val(frame, instr.iterable)
        cm = self.cost_model
        z = instr.zippered
        if isinstance(it, RangeValue):
            state = IterState("range", -1, it.size - 1, it, z)
            cost = cm.iter_init_range
        elif isinstance(it, DomainValue):
            state = IterState("domain", -1, it.size - 1, it, z)
            cost = cm.iter_init_domain
        elif isinstance(it, (SparseDomainValue, AssociativeDomainValue)):
            state = IterState("domain", -1, it.size - 1, it, z)
            cost = cm.iter_init_domain
        elif isinstance(it, DomainChunk):
            state = IterState("domain", it.lo - 1, it.hi, it.domain, z)
            cost = cm.iter_init_domain
        elif isinstance(it, ArrayValue):
            state = IterState("array", -1, it.size - 1, it, z)
            cost = cm.iter_init_array
        elif isinstance(it, ArrayChunk):
            state = IterState("array", it.lo - 1, it.hi, it.array, z)
            cost = cm.iter_init_array
        else:
            raise RuntimeError_(f"cannot iterate {type(it).__name__}")
        if z:
            cost += cm.iter_init_zip_extra
        frame.regs[instr.result.rid] = state
        frame.index += 1
        return cost

    def _ex_iter_next(self, thread, task, frame, instr: I.IterNext) -> int:
        state = self._val(frame, instr.state)
        if not isinstance(state, IterState):
            raise RuntimeError_("iter_next on non-iterator")
        state.pos += 1
        frame.regs[instr.result.rid] = state.pos <= state.end
        frame.index += 1
        cm = self.cost_model
        cost = {
            "range": cm.iter_next_range,
            "domain": cm.iter_next_domain,
            "array": cm.iter_next_array,
        }[state.kind]
        if state.zippered:
            cost += cm.iter_next_zip_extra
        return cost

    def _ex_iter_value(self, thread, task, frame, instr: I.IterValue) -> int:
        state = self._val(frame, instr.state)
        if not isinstance(state, IterState):
            raise RuntimeError_("iter_value on non-iterator")
        cm = self.cost_model
        cost = cm.iter_value
        if state.kind == "range":
            rng: RangeValue = state.payload  # type: ignore[assignment]
            out: object = rng.nth(state.pos)
        elif state.kind == "domain":
            dom: DomainValue = state.payload  # type: ignore[assignment]
            coords = dom.coords_of(state.pos)
            out = coords[0] if dom.rank == 1 else TupleValue(list(coords))
            cost += cm.iter_value_domain_extra
        else:  # array
            arr: ArrayValue = state.payload  # type: ignore[assignment]
            coords = arr.domain.coords_of(state.pos)
            out = (arr.root.data, arr.flat_of(coords))
            cost += cm.iter_value_domain_extra
            if arr.is_reindex:
                cost += cm.elem_addr_reindex_extra
            if self.heap._live_bytes > cm.llc_bytes:
                cost += cm.mem_stall
        frame.regs[instr.result.rid] = out
        frame.index += 1
        return cost

    # tasking --------------------------------------------------------------------------

    def _ex_spawn_join(self, thread, task, frame, instr: I.SpawnJoin) -> int:
        iterables = [self._val(frame, it) for it in instr.iterables]
        captures = [self._val(frame, c) for c in instr.captures]
        outlined = self.module.get_function(instr.outlined)
        if outlined is None:
            raise RuntimeError_(f"unknown outlined function {instr.outlined!r}")
        chunks = chunk_iteration_space(iterables, instr.kind, self.num_threads)
        cm = self.cost_model
        if not chunks:
            frame.index += 1
            return cm.spawn_base
        tag = self.scheduler.next_spawn_tag()
        # The pre-spawn stack is recorded *fully glued*: a worker task
        # spawning a nested parallel loop prepends its own pre-spawn
        # stack, so post-mortem gluing (paper §IV.C) always reaches main.
        pre_stack = task.stack_walk()
        if task.spawn is not None and not task.is_main:
            pre_stack = pre_stack + list(task.spawn.pre_spawn_stack)
        record = SpawnRecord(
            tag=tag,
            kind=instr.kind,
            pre_spawn_stack=pre_stack,
            n_tasks=len(chunks),
        )
        self._spawn_records[tag] = record
        penalty = self._penalty(outlined)
        spawn_clock = thread.clock
        for chunk_args in chunks:
            wframe = Frame(outlined, None, None)
            wframe.penalty = penalty
            all_args = list(chunk_args) + captures
            for p, a in zip(outlined.params, all_args):
                wframe.regs[p.register.rid] = a
            wtask = Task(
                wframe, spawn=record, task_id=self.scheduler.next_task_id()
            )
            wtask.last_clock = spawn_clock  # workers start at spawn time
            self.scheduler.enqueue(wtask)
        # The spawner suspends at the join; it resumes after the spawn
        # instruction once all workers complete.
        frame.index += 1
        record.waiter = task
        task.state = "joining"
        thread.task = None
        return cm.spawn_base + cm.spawn_per_task * len(chunks)


def _needs_none(ty) -> bool:
    from ..chapel.types import ArrayType, DomainType, RangeType

    return isinstance(ty, (ArrayType, DomainType, RangeType))


def run_module(
    module: Module,
    config: dict[str, object] | None = None,
    num_threads: int = 12,
    cost_model: CostModel | None = None,
    monitor: object | None = None,
    sample_threshold: float | None = None,
) -> RunResult:
    """Convenience: execute ``module`` and return the run result."""
    interp = Interpreter(
        module,
        config=config,
        num_threads=num_threads,
        cost_model=cost_model,
        monitor=monitor,
        sample_threshold=sample_threshold,
    )
    return interp.run()
