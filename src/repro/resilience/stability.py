"""Blame-rank stability under degraded telemetry.

The question the stability report answers (after TASKPROF's
perturbation validation and Cankur et al.'s noisy call-path ranking):
*if X % of the telemetry is lost or damaged, do we still point at the
same variables?*  Two metrics over the ranked blame rows:

* **top-N overlap** — fraction of the clean run's top N variables that
  survive in the degraded run's top N (order-insensitive; the "did the
  hotlist change" headline number);
* **Kendall-τ** — pairwise rank agreement over the rows both runs
  ranked (order-sensitive; 1.0 = same order, -1.0 = reversed).

The ``<unknown>`` bucket is excluded from rankings — it *is* the
degradation, not a variable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blame.report import UNKNOWN_BUCKET, BlameReport


def ranking(report: BlameReport, limit: int | None = None) -> list[str]:
    """Ranked ``context::name`` keys, best-blamed first."""
    keys = [
        f"{r.context}::{r.name}"
        for r in report.rows
        if r.name != UNKNOWN_BUCKET
    ]
    return keys[:limit] if limit is not None else keys


def top_n_overlap(clean: BlameReport, degraded: BlameReport, n: int = 5) -> float:
    """|top-N(clean) ∩ top-N(degraded)| / |top-N(clean)| (1.0 if the
    clean run has no rows)."""
    top_clean = set(ranking(clean, n))
    if not top_clean:
        return 1.0
    top_degraded = set(ranking(degraded, n))
    return len(top_clean & top_degraded) / len(top_clean)


def kendall_tau(
    clean: BlameReport, degraded: BlameReport, limit: int = 20
) -> float:
    """Kendall-τ (tau-a) over the rows both runs ranked in their top
    ``limit``.  1.0 when fewer than two rows are shared (no evidence of
    disagreement)."""
    a = ranking(clean, limit)
    b = ranking(degraded, limit)
    pos_a = {k: i for i, k in enumerate(a)}
    pos_b = {k: i for i, k in enumerate(b)}
    common = [k for k in a if k in pos_b]
    if len(common) < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            da = pos_a[common[i]] - pos_a[common[j]]
            db = pos_b[common[i]] - pos_b[common[j]]
            if da * db > 0:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 1.0


@dataclass(frozen=True)
class StabilityPoint:
    """One (fault class, rate) cell of a stability sweep."""

    fault: str
    rate: float
    completed: bool
    top5_overlap: float
    kendall_tau: float
    unknown_rate: float  # unknown / (user + unknown)
    quarantine_rate: float
    recovered: int

    def as_dict(self) -> dict:
        return {
            "fault": self.fault,
            "rate": self.rate,
            "completed": self.completed,
            "top5_overlap": round(self.top5_overlap, 4),
            "kendall_tau": round(self.kendall_tau, 4),
            "unknown_rate": round(self.unknown_rate, 4),
            "quarantine_rate": round(self.quarantine_rate, 4),
            "recovered": self.recovered,
        }


def compare_reports(
    fault: str,
    rate: float,
    clean: BlameReport,
    degraded: BlameReport,
    n: int = 5,
) -> StabilityPoint:
    """Scores one degraded run against its clean twin."""
    stats = degraded.stats
    denom = stats.user_samples + stats.unknown_samples
    q_denom = stats.total_raw_samples + stats.quarantined_samples
    return StabilityPoint(
        fault=fault,
        rate=rate,
        completed=True,
        top5_overlap=top_n_overlap(clean, degraded, n),
        kendall_tau=kendall_tau(clean, degraded),
        unknown_rate=stats.unknown_samples / denom if denom else 0.0,
        quarantine_rate=stats.quarantined_samples / q_denom if q_denom else 0.0,
        recovered=stats.recovered_samples,
    )
