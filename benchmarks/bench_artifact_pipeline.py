"""A1 — Artifact pipeline throughput and the run-once dividend.

Measures, per paper workload:

* ``profile``      — one full live profile (the run you pay for once);
* ``write``        — serializing its snapshot to ``.cbp``;
* ``read``         — loading + validating the artifact back;
* ``render_live``  — rendering all text views from the live result;
* ``render_cbp``   — rendering the same views from the loaded artifact.

The point of the staged pipeline is that every re-render costs
``read + render`` instead of ``profile + render``; the recorded
``rerender_speedup`` quantifies that.  Write/read throughput (MB/s over
the artifact's own size) lands in ``BENCH_artifact.json`` at the
repository root, next to ``BENCH_pipeline.json``.

Run directly (``python benchmarks/bench_artifact_pipeline.py``) or via
pytest; the pytest smoke only asserts sanity floors (artifact renders
must be byte-identical and re-rendering must beat re-profiling), never
absolute host speed.
"""

from __future__ import annotations

import json
import os
import time

from repro.artifact import (
    artifact_bytes,
    read_artifact,
    snapshot_from_result,
    write_artifact,
)
from repro.bench.programs import clomp, lulesh, minimd
from repro.pipeline import render_stage
from repro.tooling.profiler import Profiler

NUM_THREADS = 12
THRESHOLD = 4999
RESULT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_artifact.json"
)

WORKLOADS = {
    "minimd": ("minimd.chpl", lambda: minimd.build_source(), minimd.config_for),
    "clomp": ("clomp.chpl", lambda: clomp.build_source(), clomp.config_for),
    "lulesh": ("lulesh.chpl", lambda: lulesh.build_source(), lulesh.config_for),
}

VIEWS = ("data", "code", "hybrid", "html")

#: Repetitions for the cheap I/O stages (best-of; deterministic work).
ROUNDS = 3


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _best_of(fn) -> tuple[float, object]:
    best, keep = float("inf"), None
    for _ in range(ROUNDS):
        t, out = _timed(fn)
        if t < best:
            best, keep = t, out
    return best, keep


def measure_workload(name: str, tmp_dir: str) -> dict:
    filename, build, config_for = WORKLOADS[name]
    source = build()
    config = config_for()

    profiler = Profiler(
        source,
        filename=filename,
        config=config,
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
    )
    t_profile, result = _timed(profiler.profile)
    snapshot = snapshot_from_result(result)
    size = len(artifact_bytes(snapshot))
    path = os.path.join(tmp_dir, f"{name}.cbp")

    t_write, _ = _best_of(lambda: write_artifact(path, snapshot))
    t_read, loaded = _best_of(lambda: read_artifact(path))

    t_render_live, live_views = _best_of(
        lambda: [render_stage(result, v) for v in VIEWS]
    )
    t_render_cbp, cbp_views = _best_of(
        lambda: [render_stage(loaded, v) for v in VIEWS]
    )
    assert cbp_views == live_views, f"{name}: artifact views diverged"

    return {
        "artifact_bytes": size,
        "profile_seconds": round(t_profile, 4),
        "write_seconds": round(t_write, 5),
        "read_seconds": round(t_read, 5),
        "render_live_seconds": round(t_render_live, 5),
        "render_cbp_seconds": round(t_render_cbp, 5),
        "write_mb_per_s": round(size / max(t_write, 1e-9) / 1e6, 2),
        "read_mb_per_s": round(size / max(t_read, 1e-9) / 1e6, 2),
        # run-once dividend: re-render from artifact vs re-profile live.
        "rerender_speedup": round(
            (t_profile + t_render_live) / max(t_read + t_render_cbp, 1e-9), 1
        ),
    }


def run_artifact_bench(tmp_dir: str | None = None) -> dict:
    import tempfile

    own = tmp_dir is None
    ctx = tempfile.TemporaryDirectory() if own else None
    use_dir = ctx.name if own else tmp_dir
    try:
        results = {
            "config": {"num_threads": NUM_THREADS, "threshold": THRESHOLD},
            "workloads": {
                name: measure_workload(name, use_dir) for name in WORKLOADS
            },
        }
    finally:
        if ctx is not None:
            ctx.cleanup()
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = ["artifact pipeline (write/read MB/s, re-render speedup)"]
    for name, r in results["workloads"].items():
        lines.append(
            f"  {name:7s} {r['artifact_bytes']:8d} B  "
            f"write {r['write_mb_per_s']:7.2f} MB/s  "
            f"read {r['read_mb_per_s']:7.2f} MB/s  "
            f"re-render {r['rerender_speedup']:6.1f}x vs re-profile"
        )
    return "\n".join(lines)


def test_artifact_throughput(tmp_path):
    results = run_artifact_bench(str(tmp_path))
    print("\n" + render(results))
    for name, r in results["workloads"].items():
        assert r["artifact_bytes"] > 0
        # Rendering from the artifact must beat re-running the program
        # by a wide margin — that is the whole design.
        assert r["rerender_speedup"] > 5, f"{name}: {r['rerender_speedup']}x"


if __name__ == "__main__":
    print(render(run_artifact_bench()))
