"""Structured diagnostics: :class:`Finding` records and rendering.

A finding is one actionable observation produced by an analysis pass:
a rule id from the catalog, a severity, source anchors resolved from IR
debug info, the source variables involved, and a remediation hint tied
to the paper's corresponding hand optimization.  The text and JSON
renderings are stable — the CLI's ``--json`` output is a contract for
CI gates and editor tooling.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass


class Severity(enum.IntEnum):
    """Ordered so comparisons read naturally: ERROR > WARNING > INFO."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r} (want info/warning/error)"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an advisor pass or the race detector."""

    rule: str  # stable rule id from the catalog, e.g. "zippered-iteration"
    severity: Severity
    message: str
    file: str
    line: int
    function: str  # source-level context (outlined bodies report their origin)
    variables: tuple[str, ...] = ()
    remediation: str = ""
    #: Instruction ids anchoring the finding (evidence for drill-down).
    iids: tuple[int, ...] = ()
    #: Filled by the blame-guided ranker when a profile is available:
    #: the highest blame fraction among `variables` (0..1), else None.
    blame: float | None = None

    @property
    def where(self) -> str:
        return f"{self.file}:{self.line}"

    @property
    def blame_percent(self) -> float | None:
        return None if self.blame is None else 100.0 * self.blame

    def with_blame(self, blame: float | None) -> "Finding":
        from dataclasses import replace

        return replace(self, blame=blame)


def max_severity(findings: list[Finding]) -> Severity | None:
    return max((f.severity for f in findings), default=None)


def sort_key(f: Finding):
    """Most severe first; within a severity, highest blame first, then
    stable source order.  The trailing iid tuple makes the key total
    over well-formed findings (two passes reporting identical text on
    the same line still order deterministically), keeping rendered and
    JSON output byte-stable across runs."""
    return (
        -int(f.severity),
        -(f.blame if f.blame is not None else -1.0),
        f.file,
        f.line,
        f.rule,
        f.message,
        f.iids,
    )


def render_finding(f: Finding) -> str:
    head = f"{f.severity.label:<7} [{f.rule}] {f.where} ({f.function})"
    blame = ""
    if f.blame is not None:
        blame = f" [blame {100.0 * f.blame:.1f}%]"
    lines = [f"{head}{blame}: {f.message}"]
    if f.variables:
        lines.append(f"        variables: {', '.join(f.variables)}")
    if f.remediation:
        lines.append(f"        hint: {f.remediation}")
    return "\n".join(lines)


def render_findings(findings: list[Finding], title: str | None = None) -> str:
    """Stable text rendering (sorted; severity totals in the footer)."""
    ordered = sorted(findings, key=sort_key)
    out: list[str] = []
    if title:
        out.append(title)
    if not ordered:
        out.append("no findings")
        return "\n".join(out)
    out.extend(render_finding(f) for f in ordered)
    counts: dict[str, int] = {}
    for f in ordered:
        counts[f.severity.label] = counts.get(f.severity.label, 0) + 1
    summary = ", ".join(
        f"{counts[s]} {s}" for s in ("error", "warning", "info") if s in counts
    )
    out.append(f"-- {len(ordered)} finding(s): {summary}")
    return "\n".join(out)


def finding_to_dict(f: Finding) -> dict:
    d = asdict(f)
    d["severity"] = f.severity.label
    d["variables"] = list(f.variables)
    d["iids"] = list(f.iids)
    return d


def findings_to_json(findings: list[Finding], indent: int | None = 2) -> str:
    ordered = sorted(findings, key=sort_key)
    return json.dumps([finding_to_dict(f) for f in ordered], indent=indent)


#: Rule catalog: id → (default severity, one-line description).  The
#: descriptions double as documentation in DESIGN.md §6 and the README.
RULE_CATALOG: dict[str, tuple[Severity, str]] = {
    "zippered-iteration": (
        Severity.WARNING,
        "zippered iteration in a hot loop pays per-step multi-iterator "
        "coordination (paper §V.A, MiniMD)",
    ),
    "loop-domain-remap": (
        Severity.WARNING,
        "domain/slice/reindex view rebuilt per loop iteration "
        "(paper §V.A, MiniMD domain remapping)",
    ),
    "record-flattening": (
        Severity.WARNING,
        "array-of-class element whose field is itself indexed: every "
        "access dereferences through the object (paper §V.B, CLOMP "
        "partArray->zoneArray)",
    ),
    "tuple-temporaries": (
        Severity.WARNING,
        "tuple temporaries constructed and torn down inside a loop "
        "(paper §V.C, LULESH CalcElemNodeNormals)",
    ),
    "hoistable-allocation": (
        Severity.WARNING,
        "array allocated per call/iteration over a loop-invariant "
        "domain (paper §V.C, LULESH Variable Globalization)",
    ),
    "param-unroll": (
        Severity.INFO,
        "small constant-trip loop; a `for param` unroll removes the "
        "iterator overhead (paper Table VII)",
    ),
    "remote-access-batching": (
        Severity.WARNING,
        "indirect (gather-style) remote reads feed arithmetic inside a "
        "parallel loop; batch them with an inspector-executor gather "
        "into a local buffer",
    ),
    "aggregation-candidate": (
        Severity.WARNING,
        "scalar read-modify-write through an indirection-determined "
        "destination in a parallel loop; aggregate updates per locale "
        "and flush in bulk",
    ),
    "indirection-hoist": (
        Severity.WARNING,
        "indirection index reloaded every inner-loop iteration although "
        "it only depends on outer-loop state; hoist the load out of the "
        "inner loop",
    ),
    "forall-race": (
        Severity.ERROR,
        "conflicting writes to a shared variable from concurrent tasks "
        "(no reduce intent, no index-disjoint addressing)",
    ),
}
