"""Comparator profilers: the pprof-style code-centric baseline (paper
Fig. 4) and the HPCToolkit-style data-centric baseline (paper §II.B's
"unknown data" critique)."""

from .hpctk import HpctkAttributor, HpctkResult, TRACKING_THRESHOLD_BYTES, render_hpctk
from .pprof import PprofRow, build_pprof_profile, render_pprof

__all__ = [
    "HpctkAttributor",
    "HpctkResult",
    "PprofRow",
    "TRACKING_THRESHOLD_BYTES",
    "build_pprof_profile",
    "render_hpctk",
    "render_pprof",
]
