"""The end-to-end tool: the four-step pipeline of paper Fig. 2.

1. static analysis  → :class:`~repro.blame.ModuleBlameInfo`
2. execution w/ sampling → :class:`~repro.sampling.Monitor` raw samples
3. post-mortem processing → instances → attribution
4. data presentation → :class:`~repro.blame.BlameReport` (+ views)

The stages themselves live in :mod:`repro.pipeline.stages`;
:class:`Profiler` is the driver that wires them together, in one of two
ways:

* ``profile()`` — the historical materialized run: collect the whole
  sample stream, then consolidate it;
* ``profile(streaming=True)`` — bounded-memory run: the monitor sinks
  sample batches straight into a
  :class:`~repro.blame.postmortem.PostmortemConsumer` (through the
  fault injector's streaming degrader when faults are enabled), so at
  no point is the full ``list[RawSample]`` resident.  Same report,
  bounded peak memory.

Typical use::

    from repro.tooling import Profiler
    result = Profiler(source, config={"n": 8}).profile()
    for row in result.report.top(5):
        print(row.name, f"{row.percent:.1f}%", row.context)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..blame.attribution import AttributionResult
from ..blame.postmortem import PostmortemConsumer, PostmortemResult
from ..blame.report import BlameReport
from ..blame.static_info import ModuleBlameInfo
from ..ir.module import Module
from ..pipeline.stages import (
    _COMPILE_CACHE,  # noqa: F401  (re-exported for back-compat)
    aggregate_stage,
    analyze_stage,
    attribute_stage,
    collect_stage,
    compile_stage,
    postmortem_stage,
)
from ..runtime.costmodel import CostModel
from ..runtime.interpreter import Interpreter, RunResult
from ..sampling.monitor import Monitor
from ..sampling.pmu import DEFAULT_THRESHOLD

#: Back-compat alias — the compile cache moved to the pipeline stages.
_compile_cached = compile_stage


@dataclass
class ProfileResult:
    """Everything one profiled run produced."""

    module: Module
    static_info: ModuleBlameInfo
    monitor: Monitor
    run_result: RunResult
    postmortem: PostmortemResult
    attribution: AttributionResult
    report: BlameReport
    #: The interpreter that executed the run (exposes globals_store and
    #: the heap — the HPCToolkit baseline reads allocation sizes there).
    interpreter: "Interpreter | None" = None
    #: What fault injection did to this run (None on clean runs).
    fault_stats: "object | None" = None
    #: Sharded-pipeline outcome when the run used ``workers > 1``
    #: (carries the merged snapshot, per-shard partials and timings).
    parallel: "object | None" = None
    #: Sliced-collection outcome when the run used
    #: ``collect_workers > 1``
    #: (:class:`~repro.pipeline.parallel.ParallelCollection`: per-slice
    #: streams/timings, census accounting, the identity witness).
    collect_parallel: "object | None" = None
    #: Decision trail of an adaptive run
    #: (:class:`~repro.sampling.adaptive.AdaptiveTrail`; None otherwise).
    adaptive: "object | None" = None

    @property
    def stopped_early(self) -> bool:
        """Did adaptive mode halt collection before the workload ended?"""
        return self.adaptive is not None and self.adaptive.stopped_early

    @property
    def wall_seconds(self) -> float:
        return self.run_result.wall_seconds

    @property
    def quarantine_rate(self) -> float:
        """Rejected samples as a fraction of everything the monitor saw."""
        total = (
            self.report.stats.total_raw_samples
            + self.report.stats.quarantined_samples
        )
        return self.report.stats.quarantined_samples / total if total else 0.0


class Profiler:
    """Configurable front door to the blame pipeline.

    Parameters mirror the paper's experimental knobs: the PMU overflow
    ``threshold``, the worker-thread count (their 12-core Xeon), and the
    compilation mode (``fast=True`` approximates ``--fast``; the paper
    profiles *without* it — see §V's discussion of why).
    """

    def __init__(
        self,
        source: str | Module,
        filename: str = "program.chpl",
        config: dict[str, object] | None = None,
        num_threads: int = 12,
        threshold: int = DEFAULT_THRESHOLD,
        cost_model: CostModel | None = None,
        fast: bool = False,
        include_temps: bool = False,
        min_blame: float = 0.0,
        blame_options: "object | None" = None,
        skid: int = 0,
        skid_compensation: bool = False,
        faults: "object | str | None" = None,
        workers: int = 1,
        parallel_backend: str = "auto",
        worker_timeout: "float | None" = None,
        worker_retries: int = 2,
        speculate: bool = False,
        collect_workers: int = 1,
    ) -> None:
        if isinstance(source, Module):
            self.module = source
            self.program_name = source.name
            if fast:
                from ..compiler.passes import run_fast_pipeline

                run_fast_pipeline(self.module)
        else:
            self.module = compile_stage(source, filename, fast)
            self.program_name = filename
        self.config = config or {}
        self.num_threads = num_threads
        self.threshold = threshold
        self.cost_model = cost_model
        self.include_temps = include_temps
        self.min_blame = min_blame
        self.blame_options = blame_options
        self.skid = skid
        self.skid_compensation = skid_compensation
        if isinstance(faults, str):
            from ..resilience.faults import FaultPlan

            faults = FaultPlan.parse(faults)
        self.faults = faults
        if workers < 1:
            from ..errors import ParallelError

            raise ParallelError(f"need at least one worker (got {workers})")
        if worker_retries < 0:
            from ..errors import ParallelError

            raise ParallelError(
                f"worker_retries must be >= 0 (got {worker_retries})"
            )
        if collect_workers < 1:
            from ..errors import ParallelError

            raise ParallelError(
                f"need at least one collection worker (got {collect_workers})"
            )
        self.workers = workers
        self.parallel_backend = parallel_backend
        self.worker_timeout = worker_timeout
        self.worker_retries = worker_retries
        self.speculate = speculate
        self.collect_workers = collect_workers

    def _supervision(self, inject: bool = True):
        """The shard-supervision config for pool fan-outs (None on the
        serial path — there is no pool to supervise).

        ``inject=False`` keeps the retry/timeout/speculation machinery
        but drops the injected transport schedule: the fault grammar's
        task indices name *post-mortem shards*, so the analysis fan-out
        (whose batches share those indices) is supervised against real
        faults only — otherwise ``worker-dead=K`` would abort the run
        in step 1 instead of degrading shard K gracefully in step 3.
        """
        if self.workers <= 1:
            return None
        from ..pipeline.supervisor import SupervisorConfig

        return SupervisorConfig(
            plan=self.faults if inject else None,
            timeout=self.worker_timeout,
            max_retries=self.worker_retries,
            speculate=self.speculate,
        )

    def _collect_supervision(self):
        """Shard supervision for the sliced-collection fan-out (None
        when collection is serial).  Transport faults DO inject here —
        a lost slice replays deterministically from its checkpoint, so
        the schedule exercises recovery without costing identity."""
        if self.collect_workers <= 1:
            return None
        from ..pipeline.supervisor import SupervisorConfig

        return SupervisorConfig(
            plan=self.faults,
            timeout=self.worker_timeout,
            max_retries=self.worker_retries,
            speculate=self.speculate,
        )

    def _collect(self):
        """Step 2 for the materialized paths: serial when
        ``collect_workers == 1``, virtual-clock-sliced otherwise (the
        reassembled monitor/stream is byte-identical either way)."""
        return collect_stage(
            self.module,
            config=self.config,
            num_threads=self.num_threads,
            threshold=self.threshold,
            cost_model=self.cost_model,
            skid=self.skid,
            skid_compensation=self.skid_compensation,
            workers=self.collect_workers,
            backend=self.parallel_backend,
            supervision=self._collect_supervision(),
        )

    def _injector(self):
        if self.faults is None or getattr(self.faults, "is_clean", True):
            return None
        from ..resilience.inject import FaultInjector

        return FaultInjector(self.faults, module=self.module)

    def profile(
        self,
        streaming: bool = False,
        batch_size: int = 256,
        evidence_window: int | None = None,
        adaptive: "object | None" = None,
    ) -> ProfileResult:
        """Runs the pipeline end to end.

        ``streaming=True`` switches collection and post-mortem to the
        bounded-memory path: samples flow to the consumer in batches of
        ``batch_size`` (the monitor's ``peak_resident`` never exceeds
        it) and idle samples are counted, not kept.  ``evidence_window``
        additionally bounds the held-back degraded-sample buffer (see
        :class:`~repro.blame.postmortem.PostmortemConsumer`).  On a
        clean run both paths produce identical reports.

        With ``workers > 1`` (and not streaming) post-mortem and
        attribution run sharded across a worker pool — see
        :mod:`repro.pipeline.parallel` — producing bit-identical
        results; the outcome rides on ``ProfileResult.parallel``.

        ``adaptive`` (an
        :class:`~repro.sampling.adaptive.AdaptiveConfig`, or ``True``
        for the defaults) switches to confidence-driven collection:
        streaming rounds with incremental attribution, stopping early
        once the blame ranking is statistically settled — see
        :mod:`repro.sampling.adaptive`.  Composes with ``workers > 1``
        (static analysis still fans out; collection is inherently
        serial) and with fault injection (degraded telemetry widens the
        intervals, delaying the stop).
        """
        if adaptive is not None and streaming:
            raise ValueError(
                "adaptive mode already streams in rounds; drop streaming=True"
            )
        if streaming and self.workers > 1:
            from ..errors import ParallelError

            raise ParallelError(
                "streaming mode is incompatible with workers > 1: the "
                "bounded evidence window resolves candidates mid-stream, "
                "which has no faithful sharded equivalent"
            )
        if self.collect_workers > 1 and adaptive is not None:
            from ..errors import ParallelError

            raise ParallelError(
                "adaptive sampling is incompatible with collect_workers "
                "> 1: the stopping decision depends on the stream so "
                "far, so slices cannot be collected independently"
            )
        if self.collect_workers > 1 and streaming:
            from ..errors import ParallelError

            raise ParallelError(
                "streaming mode is incompatible with collect_workers > "
                "1: sliced collection retains per-slice streams and has "
                "no bounded-memory sink"
            )
        # Step 1 — static analysis (fanned out when workers > 1).
        static_info = analyze_stage(
            self.module,
            options=self.blame_options,
            workers=self.workers,
            backend=self.parallel_backend,
            supervision=self._supervision(inject=False),
        )
        injector = self._injector()

        if adaptive is not None:
            from ..sampling.adaptive import AdaptiveConfig

            if adaptive is True:
                adaptive = AdaptiveConfig()
            return self._profile_adaptive(static_info, injector, adaptive)

        if self.workers > 1:
            return self._profile_parallel(static_info, injector)

        if streaming:
            consumer = PostmortemConsumer(
                self.module,
                options=static_info.options,
                tolerant=True,
                evidence_window=evidence_window,
                keep_runtime_samples=False,
            )
            degrade = injector.degrader() if injector is not None else None
            pm_clock = [0.0]

            def sink(batch):
                t0 = time.perf_counter()
                consumer.feed(degrade(batch) if degrade is not None else batch)
                pm_clock[0] += time.perf_counter() - t0

            # Step 2 — execution, sinking batches as they fill (step 3
            # runs incrementally inside the sink).
            coll = collect_stage(
                self.module,
                config=self.config,
                num_threads=self.num_threads,
                threshold=self.threshold,
                cost_model=self.cost_model,
                skid=self.skid,
                skid_compensation=self.skid_compensation,
                sink=sink,
                batch_size=batch_size,
            )
            t0 = time.perf_counter()
            pm = consumer.finish()
            attribution = attribute_stage(static_info, pm)
            postmortem_seconds = pm_clock[0] + time.perf_counter() - t0
        else:
            # Step 2 — execution under the monitor, stream retained
            # (virtual-clock-sliced when collect_workers > 1).
            coll = self._collect()

            # Optional fault injection between steps 2 and 3: the
            # monitor's stream stays pristine; post-mortem sees the
            # degraded copy.
            samples = coll.monitor.samples
            if injector is not None:
                samples = injector.degrade_samples(samples)

            # Step 3 — post-mortem processing (tolerant: degraded
            # telemetry is bucketed/quarantined, never raised; a no-op
            # when clean).
            t0 = time.perf_counter()
            pm = postmortem_stage(
                self.module, samples, options=static_info.options, tolerant=True
            )
            attribution = attribute_stage(static_info, pm)
            postmortem_seconds = time.perf_counter() - t0

        # Step 4 — report assembly.
        monitor = coll.monitor
        report = aggregate_stage(
            self.program_name,
            pm,
            attribution,
            wall_seconds=coll.run_result.wall_seconds,
            dataset_bytes=monitor.dataset_size_bytes(),
            stackwalk_cycles=monitor.overhead.stackwalk_cycles_total,
            postmortem_seconds=postmortem_seconds,
            monitor_quarantine=monitor.quarantine_by_reason(),
            min_blame=self.min_blame,
            include_temps=self.include_temps,
        )
        return ProfileResult(
            module=self.module,
            static_info=static_info,
            monitor=monitor,
            run_result=coll.run_result,
            postmortem=pm,
            attribution=attribution,
            report=report,
            interpreter=coll.interpreter,
            fault_stats=injector.stats if injector is not None else None,
            collect_parallel=coll.parallel,
        )

    def _profile_parallel(self, static_info, injector) -> ProfileResult:
        """The sharded path: collection (serial, or virtual-clock-sliced
        when ``collect_workers > 1`` — either way the stream is the
        serial stream), then pool-parallel post-mortem + attribution
        reassembled through ``merge_snapshots``."""
        from ..pipeline.parallel import parallel_postmortem

        # Step 2 — execution under the monitor, stream retained.
        coll = self._collect()
        monitor = coll.monitor
        # Degrade BEFORE sharding (the streaming degrader is
        # chunking-invariant, so every shard sees exactly the degraded
        # records a serial pass would have seen).
        samples = monitor.samples
        if injector is not None:
            samples = injector.degrade_samples(samples)

        # Steps 3 + 4 — sharded post-mortem/attribution, merged partial
        # snapshots (parallel.py documents the bit-identity argument).
        par = parallel_postmortem(
            self.module,
            static_info,
            samples,
            workers=self.workers,
            backend=self.parallel_backend,
            options=static_info.options,
            program=self.program_name,
            wall_seconds=coll.run_result.wall_seconds,
            dataset_bytes=monitor.dataset_size_bytes(),
            stackwalk_cycles=monitor.overhead.stackwalk_cycles_total,
            monitor_quarantine=monitor.quarantine_by_reason(),
            monitor_quarantine_provenance=[
                (q.reason, q.sample.index) for q in monitor.quarantined
            ],
            min_blame=self.min_blame,
            include_temps=self.include_temps,
            threshold=self.threshold,
            num_threads=self.num_threads,
            fault_stats=(
                injector.stats.as_dict() if injector is not None else None
            ),
            supervision=self._supervision(),
        )
        return ProfileResult(
            module=self.module,
            static_info=static_info,
            monitor=monitor,
            run_result=coll.run_result,
            postmortem=par.postmortem,
            attribution=par.attribution,
            report=par.snapshot.report,
            interpreter=coll.interpreter,
            fault_stats=injector.stats if injector is not None else None,
            parallel=par,
            collect_parallel=coll.parallel,
        )


    def _profile_adaptive(self, static_info, injector, config) -> ProfileResult:
        """Confidence-driven collection: the monitor sinks rounds into
        an :class:`~repro.sampling.adaptive.AdaptiveController`, which
        feeds the streaming consumer, attributes each round's delta, and
        raises :class:`~repro.sampling.adaptive.StopSampling` out of the
        interpreter once the ranking is statistically settled.  The
        samples after the stopping point are never generated at all —
        that is the wall-clock saving."""
        from ..sampling.adaptive import AdaptiveController, StopSampling
        from ..sampling.pmu import PMUConfig

        consumer = PostmortemConsumer(
            self.module,
            options=static_info.options,
            tolerant=True,
            keep_runtime_samples=False,
        )
        degrade = injector.degrader() if injector is not None else None
        controller = AdaptiveController(
            config,
            static_info,
            consumer,
            degrade=degrade,
            program=self.program_name,
            include_temps=self.include_temps,
        )
        monitor = Monitor(
            PMUConfig(threshold=self.threshold),
            sink=controller.sink,
            batch_size=config.round_samples,
        )
        controller.bind_monitor(monitor)
        interp = Interpreter(
            self.module,
            config=self.config,
            num_threads=self.num_threads,
            cost_model=self.cost_model,
            monitor=monitor,
            sample_threshold=self.threshold,
            skid=self.skid,
            skid_compensation=self.skid_compensation,
        )
        try:
            run_result = interp.run()
        except StopSampling:
            # The event loop unwound mid-run; the scheduler clocks
            # reflect exactly the truncated execution.
            run_result = interp.build_run_result()
        controller.close()
        monitor.flush()  # final partial round (recorded, never raises)
        t0 = time.perf_counter()
        pm, attribution = controller.finish()
        postmortem_seconds = time.perf_counter() - t0

        report = aggregate_stage(
            self.program_name,
            pm,
            attribution,
            wall_seconds=run_result.wall_seconds,
            dataset_bytes=monitor.dataset_size_bytes(),
            stackwalk_cycles=monitor.overhead.stackwalk_cycles_total,
            postmortem_seconds=postmortem_seconds,
            monitor_quarantine=monitor.quarantine_by_reason(),
            min_blame=self.min_blame,
            include_temps=self.include_temps,
        )
        return ProfileResult(
            module=self.module,
            static_info=static_info,
            monitor=monitor,
            run_result=run_result,
            postmortem=pm,
            attribution=attribution,
            report=report,
            interpreter=interp,
            fault_stats=injector.stats if injector is not None else None,
            adaptive=controller.trail,
        )


def run_only(
    source: str | Module,
    filename: str = "program.chpl",
    config: dict[str, object] | None = None,
    num_threads: int = 12,
    cost_model: CostModel | None = None,
    fast: bool = False,
) -> RunResult:
    """Executes a program without profiling (for timing comparisons —
    the paper's original-vs-optimized speedup tables)."""
    if isinstance(source, Module):
        module = source
        if fast:
            from ..compiler.passes import run_fast_pipeline

            run_fast_pipeline(module)
    else:
        module = compile_stage(source, filename, fast)
    interp = Interpreter(
        module, config=config, num_threads=num_threads, cost_model=cost_model
    )
    return interp.run()
