"""Blame-guided static analysis suite (the "advisor").

The paper's speedups came from optimizations an expert *read out of*
the blame tables — de-zippering, domain-remap removal, structure
flattening, tuple-temporary elimination, allocation hoisting.  This
package closes the loop: a diagnostics engine whose passes detect those
anti-patterns statically over the IR/CFG/data-flow substrate, a static
race detector for ``forall``/``coforall`` bodies, and a ranker that
joins the findings with a measured blame profile so each recommendation
carries the blame percentage of the variables it touches.

Typical use::

    from repro.analysis import analyze_module, rank_findings
    findings = analyze_module(module)          # static only
    findings = rank_findings(findings, report) # + blame percentages
"""

from ..errors import AnalysisError
from .context import AnalysisContext
from .diagnostics import (
    Finding,
    Severity,
    findings_to_json,
    max_severity,
    render_findings,
)
from .locality import AccessClass, Locality, LocalityAnalysis
from .passes import (
    PASS_REGISTRY,
    AnalysisPass,
    analyze_module,
    default_passes,
)
from .races import RaceDetectorPass
from .ranker import attach_blame, rank_findings

__all__ = [
    "AccessClass",
    "AnalysisContext",
    "AnalysisError",
    "AnalysisPass",
    "Finding",
    "Locality",
    "LocalityAnalysis",
    "PASS_REGISTRY",
    "RaceDetectorPass",
    "Severity",
    "analyze_module",
    "attach_blame",
    "default_passes",
    "findings_to_json",
    "max_severity",
    "rank_findings",
    "render_findings",
]
