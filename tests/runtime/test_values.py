"""Runtime value model tests: ranges, domains, arrays, views, tuples,
records — with hypothesis property suites on the geometric invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chapel.types import INT, REAL, RecordType, TupleType
from repro.runtime.values import (
    ArrayValue,
    DomainValue,
    RangeValue,
    RecordValue,
    RuntimeError_,
    TupleValue,
    copy_value,
    default_value,
    format_value,
    value_slots,
)

V3 = TupleType((REAL, REAL, REAL))


def dom(*bounds):
    return DomainValue(tuple(RangeValue(lo, hi) for lo, hi in bounds))


class TestRange:
    def test_size(self):
        assert RangeValue(0, 9).size == 10
        assert RangeValue(5, 5).size == 1
        assert RangeValue(5, 4).size == 0
        assert RangeValue(0, 9, 2).size == 5
        assert RangeValue(9, 0, -3).size == 4

    def test_indices(self):
        assert list(RangeValue(0, 6, 2).indices()) == [0, 2, 4, 6]
        assert list(RangeValue(3, 1, -1).indices()) == [3, 2, 1]

    def test_contains(self):
        r = RangeValue(0, 10, 2)
        assert r.contains(4) and not r.contains(5) and not r.contains(12)

    def test_nth_position_roundtrip(self):
        r = RangeValue(-3, 9, 3)
        for k in range(r.size):
            assert r.position_of(r.nth(k)) == k

    def test_zero_step_rejected(self):
        with pytest.raises(RuntimeError_):
            RangeValue(0, 5, 0)

    def test_subrange_by_position(self):
        r = RangeValue(10, 30, 5)
        sub = r.subrange_by_position(1, 3)
        assert (sub.lo, sub.hi, sub.step) == (15, 25, 5)


class TestDomain:
    def test_size_and_shape(self):
        d = dom((0, 3), (0, 4))
        assert d.size == 20 and d.shape == (4, 5)

    def test_flat_coords_roundtrip(self):
        d = dom((-1, 2), (0, 3))
        for flat in range(d.size):
            assert d.flat_of(d.coords_of(flat)) == flat

    def test_row_major_order(self):
        d = dom((0, 1), (0, 2))
        assert list(d.iter_coords()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_out_of_bounds(self):
        with pytest.raises(RuntimeError_):
            dom((0, 3)).flat_of((4,))

    def test_expand(self):
        d = dom((0, 9)).expand((1,))
        assert (d.dims[0].lo, d.dims[0].hi) == (-1, 10)

    def test_expand_broadcasts_single_amount(self):
        d = dom((0, 3), (0, 3)).expand((2,))
        assert all(r.lo == -2 and r.hi == 5 for r in d.dims)

    def test_translate_and_interior(self):
        d = dom((0, 9)).translate((5,))
        assert (d.dims[0].lo, d.dims[0].hi) == (5, 14)
        d2 = dom((0, 9)).interior((2,))
        assert (d2.dims[0].lo, d2.dims[0].hi) == (2, 7)


class TestArray:
    def make(self, *bounds, elem=0.0):
        d = dom(*bounds)
        return ArrayValue(d, REAL, data=[elem] * d.size)

    def test_elem_address_and_write(self):
        a = self.make((0, 4))
        data, i = a.elem_address((2,))
        data[i] = 9.0
        assert a.data[2] == 9.0

    def test_slice_aliases(self):
        a = self.make((0, 9))
        view = a.slice(dom((2, 5)))
        data, i = view.elem_address((3,))
        data[i] = 7.0
        assert a.data[3] == 7.0  # slice keeps coordinates
        assert view.is_view and view.root is a

    def test_slice_of_slice(self):
        a = self.make((0, 9))
        v1 = a.slice(dom((1, 8)))
        v2 = v1.slice(dom((2, 5)))
        data, i = v2.elem_address((4,))
        data[i] = 1.5
        assert a.data[4] == 1.5

    def test_reindex_translates(self):
        a = self.make((0, 9))
        view = a.reindex(dom((100, 109)))
        data, i = view.elem_address((103,))
        data[i] = 2.5
        assert a.data[3] == 2.5
        assert view.is_reindex

    def test_reindex_shape_mismatch(self):
        a = self.make((0, 9))
        with pytest.raises(RuntimeError_):
            a.reindex(dom((0, 5)))

    def test_view_bounds_checked(self):
        a = self.make((0, 9))
        view = a.slice(dom((2, 5)))
        with pytest.raises(RuntimeError_):
            view.elem_address((8,))  # outside view domain

    def test_2d_view(self):
        a = self.make((0, 3), (0, 3))
        view = a.slice(dom((1, 2), (1, 2)))
        data, i = view.elem_address((2, 2))
        data[i] = 4.0
        assert a.data[a.domain.flat_of((2, 2))] == 4.0


class TestTuplesRecords:
    def test_tuple_copy_is_deep(self):
        t = TupleValue([1.0, TupleValue([2.0, 3.0])])
        c = t.copy()
        c.elems[1].elems[0] = 99.0
        assert t.elems[1].elems[0] == 2.0

    def test_record_copy(self):
        rt = RecordType("P", (("x", REAL),))
        r = RecordValue(rt, [1.0])
        c = r.copy()
        c.fields[0] = 5.0
        assert r.fields[0] == 1.0

    def test_copy_value_passthrough_for_scalars(self):
        assert copy_value(5) == 5
        assert copy_value("s") == "s"

    def test_value_slots(self):
        assert value_slots(3.0) == 1
        assert value_slots(TupleValue([1.0, 2.0, 3.0])) == 3
        rt = RecordType("atom", (("v", V3), ("f", V3)))
        assert value_slots(default_value(rt)) == 6

    def test_default_values(self):
        assert default_value(INT) == 0
        assert default_value(REAL) == 0.0
        t = default_value(V3)
        assert isinstance(t, TupleValue) and t.elems == [0.0, 0.0, 0.0]

    def test_format_value(self):
        assert format_value(True) == "true"
        assert format_value(TupleValue([1.0, 2.0])) == "(1.0, 2.0)"


# ---------------------------------------------------------------------------
# Property suites
# ---------------------------------------------------------------------------

ranges = st.builds(
    RangeValue,
    st.integers(-50, 50),
    st.integers(-50, 50),
    st.integers(1, 5),
)


@given(ranges)
@settings(max_examples=100, deadline=None)
def test_range_size_matches_indices(r):
    assert r.size == len(list(r.indices()))


@given(ranges, st.integers(0, 200))
@settings(max_examples=100, deadline=None)
def test_range_nth_contains(r, k):
    if r.size == 0 or k >= r.size:
        return
    v = r.nth(k)
    assert r.contains(v)
    assert r.position_of(v) == k


domains = st.lists(
    st.tuples(st.integers(-5, 5), st.integers(0, 4)), min_size=1, max_size=3
).map(lambda bs: DomainValue(tuple(RangeValue(lo, lo + n) for lo, n in bs)))


@given(domains)
@settings(max_examples=80, deadline=None)
def test_domain_flat_bijection(d):
    seen = set()
    for coords in d.iter_coords():
        flat = d.flat_of(coords)
        assert 0 <= flat < d.size
        assert flat not in seen
        seen.add(flat)
        assert d.coords_of(flat) == coords
    assert len(seen) == d.size


@given(domains, st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_expand_then_interior_roundtrip(d, k):
    assert d.expand((k,)).interior((k,)) == d


@given(domains, st.integers(-5, 5))
@settings(max_examples=60, deadline=None)
def test_translate_preserves_size(d, k):
    assert d.translate((k,)).size == d.size
