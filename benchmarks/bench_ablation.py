"""Ablation study: what each blame mechanism contributes.

DESIGN.md calls for ablation benches over the design choices. Each run
disables exactly one mechanism and measures the effect on the paper's
signature results:

* alias tracking      → MiniMD's RealPos stops blaming Pos;
* descriptor writes + iterable blame → binSpace/Count drop to ~0;
* hierarchy           → CLOMP's ``->partArray[i].zoneArray[j].value``
                        rows disappear;
* stack gluing        → worker samples dead-end (blame collapses);
* interprocedural     → LULESH's b_x loses its caller-side context.
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.bench.programs import clomp, lulesh, minimd
from repro.blame.options import ABLATIONS, FULL
from repro.tooling.profiler import Profiler
from repro.views.tables import render_table


def _profile(source, name, config, options):
    return Profiler(
        source,
        filename=name,
        config=config,
        num_threads=harness.NUM_THREADS,
        threshold=harness.PROFILE_THRESHOLD,
        blame_options=options,
    ).profile()


def measure():
    out = {}
    mm_src = minimd.build_source(optimized=False)
    cl_src = clomp.build_source(optimized=False)
    ll_src = lulesh.build_source()
    for tag in (
        "full",
        "no-alias-tracking",
        "no-descriptor-writes",
        "no-implicit-iterable",
        "no-descriptor-no-iterable",
        "no-hierarchy",
        "no-stack-gluing",
        "no-interprocedural",
    ):
        opts = ABLATIONS[tag]
        mm = _profile(mm_src, "minimd.chpl", minimd.DEFAULT_CONFIG, opts)
        out.setdefault(tag, {})["minimd"] = mm.report
        if tag in ("full", "no-hierarchy", "no-interprocedural"):
            cl = _profile(cl_src, "clomp.chpl", clomp.DEFAULT_CONFIG, opts)
            out[tag]["clomp"] = cl.report
        if tag in ("full", "no-interprocedural", "no-stack-gluing"):
            ll = _profile(ll_src, "lulesh.chpl", lulesh.DEFAULT_CONFIG, opts)
            out[tag]["lulesh"] = ll.report
    return out


def test_ablations(benchmark, record):
    reports = run_once(benchmark, measure)
    full = reports["full"]

    # Alias tracking: writes through the RealCount view stop blaming
    # Count (the base array keeps only its direct ghost-row writes).
    no_alias = reports["no-alias-tracking"]["minimd"]
    assert full["minimd"].blame_of("Count") > 0.1
    assert no_alias.blame_of("Count") < full["minimd"].blame_of("Count") * 0.5

    # binSpace's blame comes from two mechanisms (descriptor writes and
    # loop-iterable blame); with both off it vanishes — it has no
    # source-level write at all.
    assert full["minimd"].blame_of("binSpace") > 0.02
    both_off = reports["no-descriptor-no-iterable"]["minimd"]
    assert both_off.blame_of("binSpace") < 0.02

    # Implicit iterable blame alone: Pos loses the loop-body share that
    # zippered iteration over its views earns it.
    no_iter = reports["no-implicit-iterable"]["minimd"]
    assert no_iter.blame_of("Pos") < full["minimd"].blame_of("Pos")

    # Hierarchy: the -> rows disappear from CLOMP.
    no_hier = reports["no-hierarchy"]["clomp"]
    assert full["clomp"].blame_of("->partArray[i].zoneArray[j].value") > 0.5
    assert no_hier.blame_of("->partArray[i].zoneArray[j].value") == 0.0
    assert no_hier.blame_of("partArray") > 0.5  # root rows survive

    # Stack gluing: LULESH worker samples dead-end; the denominator of
    # user samples collapses (most samples live in spawned tasks whose
    # unglued stacks still resolve, but globals-only bubbling is lost —
    # the glued run attributes strictly more variables).
    no_glue = reports["no-stack-gluing"]["lulesh"]
    assert len(no_glue.rows) <= len(full["lulesh"].rows)
    assert no_glue.blame_of("b_x") <= full["lulesh"].blame_of("b_x")

    # Interprocedural bubbling: b_x keeps only its leaf-frame share.
    no_inter = reports["no-interprocedural"]["lulesh"]
    assert no_inter.blame_of("b_x") < full["lulesh"].blame_of("b_x")

    rows = []
    for tag, reps in reports.items():
        mm = reps.get("minimd")
        rows.append(
            [
                tag,
                f"{100*mm.blame_of('Pos'):.1f}%" if mm else "-",
                f"{100*mm.blame_of('RealPos'):.1f}%" if mm else "-",
                f"{100*mm.blame_of('binSpace'):.1f}%" if mm else "-",
                (
                    f"{100*reps['clomp'].blame_of('->partArray[i].zoneArray[j].value'):.1f}%"
                    if "clomp" in reps
                    else "-"
                ),
                (
                    f"{100*reps['lulesh'].blame_of('b_x'):.1f}%"
                    if "lulesh" in reps
                    else "-"
                ),
            ]
        )
    record(
        "ablation",
        render_table(
            ["ablation", "Pos", "RealPos", "binSpace", "zone value", "b_x"],
            rows,
            title="Ablation study — each mechanism's signature result",
        ),
    )
