"""Tasking layer tests: chunking, spawn records, stack walks, scheduler
determinism, idle accounting."""

import pytest

from repro.runtime.tasking import (
    SCHED_YIELD,
    Scheduler,
    chunk_iteration_space,
)
from repro.runtime.values import ArrayChunk, ArrayValue, DomainChunk, DomainValue, RangeValue, RuntimeError_
from repro.chapel.types import REAL

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src, profile_src, run_src


def dom1(lo, hi):
    return DomainValue((RangeValue(lo, hi),))


class TestChunking:
    def test_forall_chunks_are_contiguous_cover(self):
        chunks = chunk_iteration_space([RangeValue(0, 99)], "forall", 8)
        assert len(chunks) == 8
        covered = []
        for (c,) in chunks:
            covered.extend(c.indices())
        assert covered == list(range(100))

    def test_forall_fewer_elements_than_tasks(self):
        chunks = chunk_iteration_space([RangeValue(0, 2)], "forall", 12)
        assert len(chunks) == 3

    def test_coforall_one_per_index(self):
        chunks = chunk_iteration_space([RangeValue(0, 4)], "coforall", 12)
        assert len(chunks) == 5
        assert all(c[0].size == 1 for c in chunks)

    def test_domain_chunks(self):
        d = DomainValue((RangeValue(0, 3), RangeValue(0, 3)))
        chunks = chunk_iteration_space([d], "forall", 3)
        total = sum(c[0].size for c in chunks)
        assert total == 16
        assert all(isinstance(c[0], DomainChunk) for c in chunks)

    def test_array_chunks(self):
        d = dom1(0, 9)
        arr = ArrayValue(d, REAL, data=[0.0] * 10)
        chunks = chunk_iteration_space([arr], "forall", 4)
        assert all(isinstance(c[0], ArrayChunk) for c in chunks)
        assert sum(c[0].size for c in chunks) == 10

    def test_zippered_chunks_align(self):
        a = ArrayValue(dom1(0, 9), REAL, data=[0.0] * 10)
        chunks = chunk_iteration_space([a, RangeValue(0, 9)], "forall", 4)
        for ac, rc in chunks:
            assert ac.size == rc.size

    def test_zippered_size_mismatch(self):
        with pytest.raises(RuntimeError_, match="unequal"):
            chunk_iteration_space([RangeValue(0, 9), RangeValue(0, 5)], "forall", 2)

    def test_empty_space(self):
        assert chunk_iteration_space([RangeValue(5, 4)], "forall", 4) == []


class TestScheduler:
    def test_requires_a_thread(self):
        with pytest.raises(RuntimeError_):
            Scheduler(0)

    def test_spawn_tags_unique(self):
        s = Scheduler(2)
        tags = [s.next_spawn_tag() for _ in range(5)]
        assert len(set(tags)) == 5

    def test_pick_thread_min_clock(self):
        s = Scheduler(3)
        s.threads[0].clock = 100.0
        s.threads[1].clock = 20.0
        s.threads[2].clock = 20.0
        assert s.pick_thread() is s.threads[1]  # ties broken by id


class TestRunScopedTaskIds:
    def test_fresh_scheduler_starts_at_zero(self):
        s = Scheduler(num_threads=2)
        assert [s.next_task_id() for _ in range(3)] == [0, 1, 2]

    def test_schedulers_do_not_share_the_counter(self):
        # Task ids used to come from a process-global itertools.count,
        # so a second run in the same process produced different sample
        # streams than the first — repeat runs must be identical.
        a, b = Scheduler(num_threads=2), Scheduler(num_threads=2)
        assert a.next_task_id() == b.next_task_id() == 0

    def test_repeat_profiles_produce_identical_streams(self):
        src = "forall i in 0..#64 { var x = i * 2.0; }"
        first = profile_src(src, num_threads=4, threshold=997)
        second = profile_src(src, num_threads=4, threshold=997)
        assert first.monitor.samples == second.monitor.samples


class TestSpawnInstrumentation:
    """The paper's §IV.B: spawn tags + pre-spawn stacks on samples."""

    SRC = """
var A: [0..39] real;
proc work() {
  forall i in 0..39 { A[i] = sqrt(i * 1.0) + i * i * 0.5 + cos(i * 0.1); }
}
proc main() { work(); }
"""

    def test_worker_samples_carry_spawn_tag_and_prestack(self):
        res = profile_src(self.SRC, threshold=211, num_threads=4)
        worker = [s for s in res.monitor.samples if s.spawn_tag is not None]
        assert worker, "expected samples inside the forall"
        for s in worker:
            assert s.pre_spawn_stack is not None
            funcs = [f for f, _ in s.pre_spawn_stack]
            assert funcs[-1] == "main"
            assert "work" in funcs

    def test_nested_spawn_prestack_reaches_main(self):
        src = """
var D: domain(2) = {0..5, 0..5};
var M: [D] real;
proc main() {
  forall i in 0..5 {
    forall j in 0..5 { M[i, j] = i * j * 1.0 + sqrt(i + j + 1.0); }
  }
}
"""
        res = profile_src(src, threshold=157, num_threads=4)
        nested = [
            s
            for s in res.monitor.samples
            if s.spawn_tag is not None
            and s.pre_spawn_stack
            and any(f.startswith("forall_fn") for f, _ in s.pre_spawn_stack)
        ]
        for s in nested:
            assert s.pre_spawn_stack[-1][0] == "main"

    def test_idle_samples_marked(self):
        res = profile_src(self.SRC, threshold=211, num_threads=12)
        idles = [s for s in res.monitor.samples if s.is_idle]
        for s in idles:
            assert s.stack[0][0] == SCHED_YIELD
            assert s.task_id == -1


class TestCausality:
    def test_wall_time_at_least_serial_fraction(self):
        src = """
proc main() {
  var s = 0.0;
  for i in 1..2000 { s += i * 1.0; }
  writeln(s);
}
"""
        r1 = run_src(src, num_threads=1)
        r12 = run_src(src, num_threads=12)
        # Serial program: thread count must not change wall time much.
        assert abs(r1.wall_seconds - r12.wall_seconds) / r1.wall_seconds < 0.2

    def test_parallel_speedup_observed(self):
        src = """
var A: [0..199] real;
proc main() {
  forall i in 0..199 { A[i] = sqrt(i * 1.0) * cos(i * 1.0) + i * 0.25; }
}
"""
        r1 = run_src(src, num_threads=1)
        r8 = run_src(src, num_threads=8)
        assert r8.wall_seconds < r1.wall_seconds * 0.6
