"""AST node definitions for the mini-Chapel frontend.

Every node carries a :class:`~repro.chapel.tokens.SourceLocation`; the
lowering step threads these through to IR debug info, which is what lets
the blame analysis attribute machine-level samples back to source lines
and variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tokens import SourceLocation

# ---------------------------------------------------------------------------
# Base classes
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class of all AST nodes."""

    loc: SourceLocation


@dataclass
class Expr(Node):
    """Base class of expression nodes."""


@dataclass
class Stmt(Node):
    """Base class of statement nodes."""


# ---------------------------------------------------------------------------
# Type expressions (syntactic; resolved to semantic types in types.py)
# ---------------------------------------------------------------------------


@dataclass
class TypeExpr(Node):
    """Base class of syntactic type annotations."""


@dataclass
class NamedType(TypeExpr):
    """A scalar or record type named in source, e.g. ``int``, ``real``,
    ``int(32)``, or a user record name."""

    name: str
    width: int | None = None  # e.g. int(32)


@dataclass
class TupleTypeExpr(TypeExpr):
    """Homogeneous ``N*T`` or heterogeneous ``(T1, T2, ...)`` tuple type."""

    count: int | None  # for N*T form
    elem: TypeExpr | None  # for N*T form
    elems: list[TypeExpr] = field(default_factory=list)  # for (T1, T2) form


@dataclass
class ArrayTypeExpr(TypeExpr):
    """``[D] T`` or ``[lo..hi] T`` array type annotation.

    ``open_rank`` is set (and ``domain`` is None) for open formal types
    ``[?] T`` / ``[?, ?] T`` whose domain comes from the actual argument.
    """

    domain: Expr | None  # a domain-valued expression (identifier, range list, ...)
    elem: TypeExpr
    open_rank: int | None = None


@dataclass
class DomainTypeExpr(TypeExpr):
    """``domain(rank)`` type annotation."""

    rank: int


@dataclass
class SparseSubdomainTypeExpr(TypeExpr):
    """``sparse subdomain(D)`` type annotation; ``parent`` is the
    rectangular parent-domain expression (an identifier or literal)."""

    parent: Expr


@dataclass
class AssocDomainTypeExpr(TypeExpr):
    """``domain(int)`` associative-domain type annotation."""

    idx: str = "int"


@dataclass
class RangeTypeExpr(TypeExpr):
    """``range`` type annotation."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class RealLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class Ident(Expr):
    name: str


@dataclass
class BinOp(Expr):
    """Binary operation; ``op`` is the surface operator text (``+``, ``<=``,
    ``&&``, ...)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class UnOp(Expr):
    """Unary operation: ``-``, ``!``, ``+``."""

    op: str
    operand: Expr


@dataclass
class Call(Expr):
    """A call to a named proc or builtin, e.g. ``sqrt(x)``."""

    callee: str
    args: list[Expr]


@dataclass
class MethodCall(Expr):
    """Method-style call, e.g. ``dom.expand(1)`` or ``arr.size()``."""

    receiver: Expr
    method: str
    args: list[Expr]


@dataclass
class Index(Expr):
    """Indexing / slicing / domain remapping: ``A[i]``, ``A[i, j]``,
    ``A[binSpace]`` (reindex), ``A[2..5]`` (alias slice)."""

    base: Expr
    indices: list[Expr]


@dataclass
class FieldAccess(Expr):
    """Record field access ``rec.field``."""

    base: Expr
    field: str


@dataclass
class TupleLit(Expr):
    """Tuple literal ``(a, b, c)``."""

    elems: list[Expr]


@dataclass
class RangeLit(Expr):
    """Range literal ``lo..hi``, ``lo..#count``, optionally ``by step``."""

    lo: Expr
    hi: Expr
    counted: bool = False  # True for lo..#count (hi holds the count)
    step: Expr | None = None


@dataclass
class DomainLit(Expr):
    """Rectangular domain literal ``{r1, r2, ...}`` of range expressions."""

    dims: list[Expr]


@dataclass
class New(Expr):
    """Record/class construction ``new R(args)``."""

    type_name: str
    args: list[Expr]


@dataclass
class Reduce(Expr):
    """Reduction expression ``op reduce iterable`` (op in +, *, min, max)."""

    op: str
    iterable: Expr


@dataclass
class IfExpr(Expr):
    """Ternary ``if c then a else b`` expression."""

    cond: Expr
    then_expr: Expr
    else_expr: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class VarDecl(Stmt):
    """Declaration: ``var/const/param/config const name [: type] [= init];``

    ``kind`` is one of ``var``, ``const``, ``param``; ``is_config`` marks
    ``config`` declarations whose initializer may be overridden by the
    run configuration (the analogue of Chapel's command-line configs).
    """

    kind: str
    name: str
    declared_type: TypeExpr | None
    init: Expr | None
    is_config: bool = False


@dataclass
class Assign(Stmt):
    """Assignment ``lhs op rhs`` where op is ``=``, ``+=``, ``-=``, ``*=``,
    ``/=``."""

    target: Expr
    op: str
    value: Expr


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (typically a call)."""

    expr: Expr


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Block | None = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Block = None  # type: ignore[assignment]


@dataclass
class LoopIndex:
    """One induction variable of a loop (a plain name)."""

    name: str
    loc: SourceLocation


@dataclass
class For(Stmt):
    """Serial/parallel loop.

    ``kind`` is ``for``, ``forall``, or ``coforall``.  ``indices`` has one
    entry for plain loops and one per iterand for zippered loops.
    ``iterables`` has one entry normally, several for ``zip(...)``.
    ``is_param`` marks ``for param i in ...`` loops (compile-time
    unrollable; paper Table VII studies exactly this).
    """

    kind: str
    indices: list[LoopIndex]
    iterables: list[Expr]
    body: Block
    is_param: bool = False
    zippered: bool = False
    #: Reduce intents from a `with (+ reduce x, ...)` clause: (op, name).
    #: Each task accumulates into a private copy combined at the join.
    reduce_intents: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class When:
    """One arm of a select statement."""

    values: list[Expr]
    body: Block
    loc: SourceLocation


@dataclass
class Select(Stmt):
    """``select e { when v1 {..} when v2 {..} otherwise {..} }``."""

    subject: Expr
    whens: list[When]
    otherwise: Block | None = None


@dataclass
class Use(Stmt):
    """``use ModuleName;`` — accepted and ignored (single-module model)."""

    module: str


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A formal parameter of a proc: name, intent, optional type."""

    name: str
    intent: str  # "in" (default, by value), "ref", "out", "inout", "param"
    declared_type: TypeExpr | None
    loc: SourceLocation


@dataclass
class ProcDecl(Stmt):
    """Procedure declaration. Procs may nest (LULESH's
    ``ElemFaceNormal`` lives inside ``CalcElemNodeNormals``).

    ``is_iter`` marks serial iterators (``iter`` procs with ``yield``);
    they are consumed by ``for`` loops via inline expansion, the way
    the Chapel compiler lowers serial iterators."""

    name: str
    params: list[Param]
    return_type: TypeExpr | None
    body: Block
    is_iter: bool = False


@dataclass
class Yield(Stmt):
    """``yield expr;`` inside an ``iter`` proc."""

    value: Expr = None  # type: ignore[assignment]


@dataclass
class FieldDecl:
    """A record field: name, type, optional default initializer."""

    name: str
    declared_type: TypeExpr
    init: Expr | None
    loc: SourceLocation


@dataclass
class RecordDecl(Stmt):
    """``record R { var f1: T1; ... }`` (classes are treated as records;
    the single-locale value model makes the distinction immaterial for
    blame attribution)."""

    name: str
    fields: list[FieldDecl]
    is_class: bool = False


@dataclass
class Program(Node):
    """A whole source file: an ordered list of top-level statements.

    Top-level ``VarDecl``s are the program's global variables (Chapel
    module-level variables, initialized before ``main`` runs — MiniMD's
    ``Pos``/``Bins`` live here).  If a ``proc main`` is declared it is
    invoked after global initialization; otherwise the remaining
    top-level statements form an implicit main.
    """

    decls: list[Stmt] = field(default_factory=list)
    filename: str = "<string>"
