"""Instruction-level control-dependence tests (implicit blame edges)."""

import pytest

from repro.blame.control_deps import instruction_control_deps
from repro.ir import instructions as I

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src


def deps_by_line(src, fn="main", transitive=True):
    m = compile_src(src)
    f = m.functions[fn]
    deps = instruction_control_deps(f, transitive=transitive)
    line_of = {i.iid: i.loc.line for i in f.instructions()}
    out = {}
    for iid, controllers in deps.items():
        out.setdefault(line_of[iid], set()).update(
            line_of[c.iid] for c in controllers
        )
    return out


class TestControlDeps:
    def test_if_body_controlled_by_condition(self):
        src = (
            "proc main() {\n"       # 1
            "var x = 0;\n"           # 2
            "var c = true;\n"        # 3
            "if c {\n"               # 4
            "x = 1;\n"               # 5
            "}\n"
            "}"
        )
        d = deps_by_line(src)
        assert 4 in d[5]
        assert 4 not in d.get(2, set())

    def test_else_branch_also_controlled(self):
        src = (
            "proc main() {\n"
            "var c = false;\n"
            "var x = 0;\n"
            "if c {\n"               # 4
            "x = 1;\n"               # 5
            "} else {\n"
            "x = 2;\n"               # 7
            "}\n"
            "}"
        )
        d = deps_by_line(src)
        assert 4 in d[5]
        assert 4 in d[7]

    def test_nested_loops_transitive_vs_immediate(self):
        src = (
            "proc main() {\n"
            "var s = 0;\n"
            "for i in 1..3 {\n"      # 3 (outer control)
            "for j in 1..3 {\n"      # 4 (inner control)
            "s += i * j;\n"          # 5
            "}\n"
            "}\n"
            "}"
        )
        trans = deps_by_line(src, transitive=True)
        imm = deps_by_line(src, transitive=False)
        # transitive: body controlled by both loop levels
        assert {3, 4} <= trans[5]
        # immediate: only the innermost loop's branch
        assert 4 in imm[5]
        assert 3 not in imm[5]

    def test_straightline_code_uncontrolled(self):
        src = "proc main() {\nvar a = 1;\nvar b = a + 2;\n}"
        d = deps_by_line(src)
        assert d.get(2, set()) == set()
        assert d.get(3, set()) == set()

    def test_while_self_control(self):
        src = (
            "proc main() {\n"
            "var i = 0;\n"
            "while i < 5 {\n"        # 3
            "i += 1;\n"              # 4
            "}\n"
            "}"
        )
        d = deps_by_line(src)
        assert 3 in d[4]
        # the loop test controls its own re-execution
        assert 3 in d[3]


class TestParallelRefSemantics:
    def test_forall_over_array_writes_through_refs(self):
        src = """
var A: [0..23] real;
proc main() {
  forall a in A {
    a = 2.5;
  }
  writeln(+ reduce A);
}
"""
        import sys, os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))
        from conftest import output_of

        assert output_of(src) == ["60.0"]

    def test_zippered_forall_mixed_ref_value(self):
        src = """
var A: [0..9] real;
proc main() {
  forall (a, i) in zip(A, 0..9) {
    a = i * 3.0;
  }
  writeln(A[9]);
}
"""
        from conftest import output_of

        assert output_of(src) == ["27.0"]
