"""Parser unit tests: every construct of the mini-Chapel grammar."""

import pytest

from repro.chapel import ast_nodes as A
from repro.chapel.errors import ParseError
from repro.chapel.parser import parse


def stmt0(src: str):
    return parse(src).decls[0]


def expr_of(src: str):
    """Parses `<expr>;` and returns the expression."""
    s = stmt0(src + ";")
    assert isinstance(s, A.ExprStmt)
    return s.expr


class TestDeclarations:
    def test_var_with_type_and_init(self):
        d = stmt0("var x: int = 3;")
        assert isinstance(d, A.VarDecl)
        assert d.kind == "var" and d.name == "x"
        assert isinstance(d.declared_type, A.NamedType)
        assert isinstance(d.init, A.IntLit)

    def test_var_inferred(self):
        d = stmt0("var y = 1.5;")
        assert d.declared_type is None
        assert isinstance(d.init, A.RealLit)

    def test_var_needs_type_or_init(self):
        with pytest.raises(ParseError):
            parse("var z;")

    def test_const_and_param(self):
        assert stmt0("const c = 1;").kind == "const"
        assert stmt0("param p = 4;").kind == "param"

    def test_config_const(self):
        d = stmt0("config const n: int = 16;")
        assert d.is_config and d.kind == "const"

    def test_config_requires_kind(self):
        with pytest.raises(ParseError):
            parse("config n = 1;")

    def test_tuple_type(self):
        d = stmt0("var v: 3*real = (1.0, 2.0, 3.0);")
        assert isinstance(d.declared_type, A.TupleTypeExpr)
        assert d.declared_type.count == 3

    def test_nested_tuple_type(self):
        d = stmt0("var h: 8*(4*real) = zeroes();")
        t = d.declared_type
        assert isinstance(t, A.TupleTypeExpr) and t.count == 8
        assert isinstance(t.elem, A.TupleTypeExpr) and t.elem.count == 4

    def test_array_type_with_domain_name(self):
        d = stmt0("var A: [D] real;")
        assert isinstance(d.declared_type, A.ArrayTypeExpr)
        assert isinstance(d.declared_type.domain, A.Ident)

    def test_array_type_with_inline_ranges(self):
        d = stmt0("var A: [0..9, 0..3] int;")
        t = d.declared_type
        assert isinstance(t.domain, A.DomainLit)
        assert len(t.domain.dims) == 2

    def test_open_array_type(self):
        p = parse("proc f(A: [?] real) { }")
        t = p.decls[0].params[0].declared_type
        assert isinstance(t, A.ArrayTypeExpr) and t.open_rank == 1

    def test_domain_type(self):
        d = stmt0("var D: domain(2) = {0..3, 0..3};")
        assert isinstance(d.declared_type, A.DomainTypeExpr)
        assert d.declared_type.rank == 2

    def test_int_width_type(self):
        d = stmt0("var c: int(32) = 0;")
        assert d.declared_type.width == 32


class TestProcs:
    def test_simple_proc(self):
        p = stmt0("proc f(x: int): int { return x; }")
        assert isinstance(p, A.ProcDecl)
        assert p.params[0].name == "x"
        assert p.return_type is not None

    def test_ref_intent(self):
        p = stmt0("proc f(ref y: real) { y = 1.0; }")
        assert p.params[0].intent == "ref"

    @pytest.mark.parametrize("intent", ["in", "out", "inout"])
    def test_other_intents(self, intent):
        p = stmt0(f"proc f({intent} y: real) {{ }}")
        assert p.params[0].intent == intent

    def test_const_ref_collapses(self):
        p = stmt0("proc f(const ref y: real) { }")
        assert p.params[0].intent == "ref"

    def test_void_proc_no_return_type(self):
        p = stmt0("proc g() { }")
        assert p.return_type is None

    def test_nested_proc(self):
        p = stmt0("proc outer() { proc inner(a: int): int { return a; } }")
        inner = p.body.stmts[0]
        assert isinstance(inner, A.ProcDecl)


class TestRecords:
    def test_record_fields(self):
        r = stmt0("record atom { var v: 3*real; var f: 3*real; }")
        assert isinstance(r, A.RecordDecl)
        assert [f.name for f in r.fields] == ["v", "f"]
        assert not r.is_class

    def test_class(self):
        r = stmt0("class Part { var residue: real; }")
        assert r.is_class

    def test_record_rejects_statements(self):
        with pytest.raises(ParseError):
            parse("record R { x = 1; }")


class TestStatements:
    def test_if_else(self):
        s = stmt0("if a < b { x = 1; } else { x = 2; }")
        assert isinstance(s, A.If) and s.else_body is not None

    def test_if_then_single(self):
        s = stmt0("if a < b then x = 1;")
        assert isinstance(s, A.If)
        assert len(s.then_body.stmts) == 1

    def test_while_do(self):
        s = stmt0("while x < 10 do x += 1;")
        assert isinstance(s, A.While)

    def test_select(self):
        s = stmt0("select x { when 1 { y = 1; } when 2, 3 { y = 2; } otherwise { y = 0; } }")
        assert isinstance(s, A.Select)
        assert len(s.whens) == 2
        assert len(s.whens[1].values) == 2
        assert s.otherwise is not None

    def test_return_break_continue(self):
        p = stmt0("proc f() { for i in 1..3 { break; continue; } return; }")
        loop = p.body.stmts[0]
        assert isinstance(loop.body.stmts[0], A.Break)
        assert isinstance(loop.body.stmts[1], A.Continue)

    def test_compound_assignment(self):
        s = stmt0("x += 2;")
        assert isinstance(s, A.Assign) and s.op == "+="

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse("f(x) = 1;")

    def test_use_statement(self):
        s = stmt0("use Time;")
        assert isinstance(s, A.Use) and s.module == "Time"


class TestLoops:
    def test_simple_for(self):
        s = stmt0("for i in 0..9 { }")
        assert isinstance(s, A.For) and s.kind == "for"
        assert not s.zippered and not s.is_param

    def test_param_for(self):
        s = stmt0("for param i in 0..7 { }")
        assert s.is_param

    def test_forall_and_coforall(self):
        assert stmt0("forall i in D { }").kind == "forall"
        assert stmt0("coforall t in 0..#4 { }").kind == "coforall"

    def test_zippered(self):
        s = stmt0("for (a, b) in zip(A, B) { }")
        assert s.zippered
        assert [ix.name for ix in s.indices] == ["a", "b"]
        assert len(s.iterables) == 2

    def test_zippered_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse("for (a, b, c) in zip(A, B) { }")

    def test_destructuring_without_zip(self):
        s = stmt0("forall (i, j) in D2 { }")
        assert len(s.indices) == 2 and len(s.iterables) == 1

    def test_loop_do_form(self):
        s = stmt0("for i in 1..3 do x += i;")
        assert len(s.body.stmts) == 1


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = expr_of("1 + 2 * 3")
        assert isinstance(e, A.BinOp) and e.op == "+"
        assert isinstance(e.rhs, A.BinOp) and e.rhs.op == "*"

    def test_precedence_cmp_over_and(self):
        e = expr_of("a < b && c > d")
        assert e.op == "&&"
        assert e.lhs.op == "<" and e.rhs.op == ">"

    def test_power_right_assoc(self):
        e = expr_of("2 ** 3 ** 2")
        assert e.op == "**"
        assert isinstance(e.rhs, A.BinOp) and e.rhs.op == "**"

    def test_range_binds_looser_than_add(self):
        e = expr_of("0..n-1")
        assert isinstance(e, A.RangeLit)
        assert isinstance(e.hi, A.BinOp)

    def test_range_by_step(self):
        e = expr_of("0..10 by 2")
        assert isinstance(e, A.RangeLit) and e.step is not None

    def test_counted_range(self):
        e = expr_of("5..#3")
        assert e.counted

    def test_unary_minus(self):
        e = expr_of("-x * y")
        assert e.op == "*"
        assert isinstance(e.lhs, A.UnOp)

    def test_call_and_method(self):
        e = expr_of("sqrt(x)")
        assert isinstance(e, A.Call) and e.callee == "sqrt"
        e = expr_of("D.expand(1)")
        assert isinstance(e, A.MethodCall) and e.method == "expand"

    def test_chained_indexing(self):
        e = expr_of("Pos[b, k]")
        assert isinstance(e, A.Index) and len(e.indices) == 2
        e = expr_of("fx[e][k]")
        assert isinstance(e, A.Index)
        assert isinstance(e.base, A.Index)

    def test_field_access_chain(self):
        e = expr_of("partArray[i].zoneArray[j].value")
        assert isinstance(e, A.FieldAccess) and e.field == "value"

    def test_tuple_literal(self):
        e = expr_of("(1.0, 2.0, 3.0)")
        assert isinstance(e, A.TupleLit) and len(e.elems) == 3

    def test_parenthesized_is_not_tuple(self):
        e = expr_of("(1 + 2)")
        assert isinstance(e, A.BinOp)

    def test_domain_literal(self):
        # Domain literals are expressions; at statement start `{` opens
        # a block, so test in initializer position.
        d = stmt0("var D = {0..3, 0..5};")
        assert isinstance(d.init, A.DomainLit) and len(d.init.dims) == 2

    def test_new_expression(self):
        e = expr_of("new Part(0.0, z)")
        assert isinstance(e, A.New) and e.type_name == "Part"

    def test_reduce_expressions(self):
        e = expr_of("+ reduce A")
        assert isinstance(e, A.Reduce) and e.op == "+"
        e = expr_of("max reduce A")
        assert isinstance(e, A.Reduce) and e.op == "max"

    def test_if_expression(self):
        # if-expressions live in expression position (`if` at statement
        # start begins an if statement).
        s = stmt0("x = if a then 1 else 2;")
        assert isinstance(s, A.Assign)
        assert isinstance(s.value, A.IfExpr)


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "var x: = 3;",
            "proc () { }",
            "if { }",
            "for in 0..3 { }",
            "x = ;",
            "select x { when { } }",
            "record { }",
            "proc f( { }",
            "var a: int = 1",  # missing semicolon
        ],
    )
    def test_malformed(self, src):
        with pytest.raises(ParseError):
            parse(src)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("proc f() { var x = 1;")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse("var x = \n  ;")
        assert exc.value.loc is not None
        assert exc.value.loc.line == 2
