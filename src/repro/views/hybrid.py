"""Hybrid view — "blame points" (paper §IV.D).

"Blame points are points in the program that are deemed to have
interesting variables; the most common one is the main function, since
the variables in there cannot be bubbled up any further in the call
stack."

The view groups the blame rows by their context (the function where the
variable lives after bubbling), ranks the blame points by total
attributed samples, and lists each point's variables — code-centric in
structure, data-centric in content.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blame.report import BlameReport, BlameRow
from .tables import pct, render_table


@dataclass
class BlamePoint:
    """One context (function) and its blamed variables."""

    context: str
    rows: list[BlameRow]

    @property
    def total_samples(self) -> int:
        return sum(r.samples for r in self.rows)


def build_blame_points(report: BlameReport, min_blame: float = 0.0) -> list[BlamePoint]:
    by_context: dict[str, list[BlameRow]] = {}
    for row in report.rows:
        if row.blame < min_blame:
            continue
        by_context.setdefault(row.context, []).append(row)
    points = [BlamePoint(ctx, rows) for ctx, rows in by_context.items()]
    # main first (the canonical blame point), then by weight.
    points.sort(key=lambda p: (p.context != "main", -p.total_samples, p.context))
    return points


def render_hybrid(
    report: BlameReport, min_blame: float = 0.005, per_point: int = 8
) -> str:
    points = build_blame_points(report, min_blame=min_blame)
    sections: list[str] = [f"Hybrid view (blame points): {report.program}"]
    for point in points:
        rows = [
            [r.name, r.type_str, pct(r.blame)]
            for r in point.rows[:per_point]
        ]
        sections.append(
            render_table(
                ["Name", "Type", "Blame"],
                rows,
                title=f"\n== blame point: {point.context} ==",
                aligns=["l", "l", "r"],
            )
        )
    return "\n".join(sections)
