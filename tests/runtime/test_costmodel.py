"""Cost model tests: the relative-cost properties the reproduction
depends on (zippered > direct, reindex surcharge, allocation weight,
icache curve, memory stalls)."""

import pytest

from repro.runtime.costmodel import CLOCK_HZ, CostModel, DEFAULT_COST_MODEL

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import run_src


class TestFunctionPenalty:
    def test_below_threshold_is_one(self):
        cm = CostModel()
        assert cm.function_penalty(10) == 1.0
        assert cm.function_penalty(cm.icache_instrs) == 1.0

    def test_grows_monotonically(self):
        cm = CostModel()
        sizes = [cm.icache_instrs + k for k in (1, 200, 800, 5000)]
        penalties = [cm.function_penalty(n) for n in sizes]
        assert penalties == sorted(penalties)
        assert penalties[0] > 1.0

    def test_caps_at_max(self):
        cm = CostModel()
        assert cm.function_penalty(10**6) == 1.0 + cm.icache_max_penalty


class TestRelativeCosts:
    """Structural relations the paper's findings hinge on."""

    def test_zippered_iteration_costs_more(self):
        cm = DEFAULT_COST_MODEL
        assert cm.iter_next_zip_extra > 0
        assert cm.iter_init_zip_extra > 0

    def test_array_iteration_beats_range_iteration_in_cost(self):
        cm = DEFAULT_COST_MODEL
        assert cm.iter_next_array > cm.iter_next_range

    def test_reindex_surcharge(self):
        assert DEFAULT_COST_MODEL.elem_addr_reindex_extra > 0

    def test_class_field_dereference_cost(self):
        assert DEFAULT_COST_MODEL.class_field_extra > DEFAULT_COST_MODEL.field_addr

    def test_allocation_is_heavyweight(self):
        cm = DEFAULT_COST_MODEL
        assert cm.make_array_base > 100 * cm.store

    def test_dynamic_indexing_surcharges(self):
        cm = DEFAULT_COST_MODEL
        assert cm.tuple_index_dynamic_extra > 0
        assert cm.elem_addr_dynamic_extra > 0


class TestCostModelDrivesTiming:
    def test_custom_model_changes_wall_time(self):
        src = """
var A: [0..49] real;
proc main() {
  for i in 0..49 { A[i] = i * 1.0; }
}
"""
        fast = run_src(src)
        from repro.compiler.lower import compile_source
        from repro.runtime.interpreter import Interpreter

        expensive = CostModel(store=300)
        m = compile_source(src, "t.chpl")
        slow = Interpreter(m, num_threads=4, cost_model=expensive).run()
        assert slow.wall_seconds > fast.wall_seconds * 2

    def test_memory_stall_applies_above_llc(self):
        # Big live heap → element accesses pay the stall.
        src_big = """
var A: [0..30000] real;
proc main() {
  var s = 0.0;
  for i in 0..999 { s += A[i]; }
  writeln(s);
}
"""
        src_small = src_big.replace("0..30000", "0..2000")
        big = run_src(src_big)
        small = run_src(src_small)
        # Same loop; the big-footprint version pays per-access stalls.
        assert big.wall_seconds > small.wall_seconds * 1.5

    def test_clock_hz_positive(self):
        assert CLOCK_HZ > 0
