"""Smoke tests for the runnable examples (the fast ones; the full
benchmark-style walkthroughs are exercised by benchmarks/)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load(name):
    path = os.path.join(EXAMPLES, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamples:
    def test_quickstart(self, capsys):
        load("quickstart.py").main()
        out = capsys.readouterr().out
        assert "Data-centric view" in out
        assert "kinetic energy" in out

    def test_compare_profilers(self, capsys):
        load("compare_profilers.py").main()
        out = capsys.readouterr().out
        assert "unknown data" in out
        assert "Variable blame" in out
        assert "table" in out

    def test_multilocale_aggregation(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        load("multilocale_aggregation.py").main()
        out = capsys.readouterr().out
        assert "merged program-wide report" in out
        assert os.path.exists(tmp_path / "multilocale_report.html")

    def test_extensions_tour(self, capsys):
        load("extensions_tour.py").main()
        out = capsys.readouterr().out
        assert "Iterators" in out
        assert "offline blame" in out
        assert "Ablations" in out

    def test_advisor_tour(self, capsys):
        load("advisor_tour.py").main()
        out = capsys.readouterr().out
        assert "zippered-iteration" in out
        assert "blame" in out
        assert "no findings" in out
        assert "forall-race" in out

    def test_irregular_advisor_tour(self, capsys):
        load("irregular_advisor_tour.py").main()
        out = capsys.readouterr().out
        assert "remote-access-batching" in out
        assert "communication findings: 0" in out
        assert "observed off-locale: 0" in out
        assert "indirection-hoist" in out
        assert "quiet" in out

    def test_all_examples_importable(self):
        # The slow walkthroughs at least parse/import cleanly.
        for name in os.listdir(EXAMPLES):
            if name.endswith(".py"):
                load(name)
