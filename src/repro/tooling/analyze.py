"""Offline analysis: post-mortem processing of a saved sample dataset.

The real tool's step 3 runs after (and separately from) execution: raw
address datasets are read back and combined with the static analysis.
This command reproduces that two-process workflow:

    # process 1: record
    python -m repro.tooling.cli prog.chpl --save-samples run.jsonl

    # process 2 (anywhere): analyze
    python -m repro.tooling.analyze run.jsonl --source prog.chpl --view all

The dataset header carries the source's SHA-256; analysis recompiles
the source with fresh deterministic instruction ids and refuses to
proceed on a hash mismatch (the ids would be meaningless).
"""

from __future__ import annotations

import argparse
import sys

from ..blame.attribution import BlameAttributor
from ..blame.postmortem import process_samples
from ..blame.report import BlameReport, RunStats, build_rows
from ..blame.static_info import ModuleBlameInfo
from ..compiler.lower import compile_source
from ..sampling.dataset import load_samples, source_digest
from ..views.code_centric import render_code_centric
from ..views.data_centric import render_data_centric
from ..views.hybrid import render_hybrid


class DatasetMismatch(Exception):
    """The dataset was recorded from a different source text."""


def analyze_dataset(
    dataset_path: str,
    source: str,
    source_name: str = "program.chpl",
    include_temps: bool = False,
    min_blame: float = 0.0,
):
    """Re-runs steps 1+3 over a saved dataset; returns
    (module, postmortem, report)."""
    header, samples = load_samples(dataset_path)
    digest = source_digest(source)
    if digest != header.source_sha256:
        raise DatasetMismatch(
            f"dataset {dataset_path} was recorded from source "
            f"{header.source_sha256[:12]}…, but the given source hashes "
            f"to {digest[:12]}…"
        )
    module = compile_source(source, source_name, fresh_ids=True)
    static_info = ModuleBlameInfo(module)
    pm = process_samples(module, samples)
    attribution = BlameAttributor(static_info).attribute(pm.instances)
    stats = RunStats(
        total_raw_samples=len(samples),
        user_samples=pm.n_user,
        runtime_samples=len(pm.runtime_samples),
    )
    report = BlameReport(
        program=header.program,
        rows=build_rows(attribution, min_blame=min_blame, include_temps=include_temps),
        stats=stats,
        locale_id=header.locale_id,
    )
    return module, pm, report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Post-mortem blame analysis of a saved sample dataset",
    )
    ap.add_argument("dataset", help="JSONL dataset from --save-samples")
    ap.add_argument("--source", required=True, help="the recorded program's source file")
    ap.add_argument("--view", choices=["data", "code", "hybrid", "all"], default="data")
    ap.add_argument("--top", type=int, default=20)
    args = ap.parse_args(argv)

    with open(args.source) as f:
        source = f.read()
    try:
        module, pm, report = analyze_dataset(args.dataset, source, args.source)
    except DatasetMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.view in ("data", "all"):
        print(render_data_centric(report, top=args.top))
        print()
    if args.view in ("code", "all"):
        print(render_code_centric(module, pm, top=args.top))
        print()
    if args.view in ("hybrid", "all"):
        print(render_hybrid(report))
        print()
    print(f"[{pm.n_raw} samples loaded, {pm.n_user} attributed]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
