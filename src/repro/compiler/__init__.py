"""Compiler: AST→IR lowering, intrinsics, and the ``--fast``
optimization pass pipeline.
"""

from .intrinsics import INTRINSICS, Intrinsic, is_intrinsic
from .lower import Lowerer, compile_source, lower_program

__all__ = [
    "INTRINSICS",
    "Intrinsic",
    "Lowerer",
    "compile_source",
    "is_intrinsic",
    "lower_program",
]
