"""E12 — Paper §II.B: the HPCToolkit-style baseline leaves almost all
Chapel samples as "unknown data" (CLOMP 96.88 %, LULESH 95.1 %), which
is the motivation for variable blame.

The baseline attributes a sample only when the leaf instruction plainly
indexes a tracked (>4 KB heap) global array; Chapel's nested classes,
tuple locals, and view indirections all defeat it.  The same samples,
fed to the blame tool, attribute the hot variables instead.
"""

from conftest import record_result, run_once

from repro.baselines.hpctk import HpctkAttributor
from repro.bench import harness
from repro.views.tables import render_table


def measure():
    out = {}
    # Sizes chosen so the programs do own >4KB arrays — the baseline
    # gets its fair chance and still loses almost everything.
    clomp_res = harness.clomp_profile(
        optimized=False, num_parts=640, zones_per_part=6, timesteps=1
    )
    lulesh_res = harness.lulesh_profile(edge_elems=5, max_steps=2)
    for name, res in (("CLOMP", clomp_res), ("LULESH", lulesh_res)):
        att = HpctkAttributor(res.module, res.interpreter)
        out[name] = (res, att.attribute(res.monitor.samples))
    return out


def test_unknown_data(benchmark, record):
    results = run_once(benchmark, measure)

    rows = []
    paper = {"CLOMP": 96.88, "LULESH": 95.1}
    for name, (res, att) in results.items():
        unknown = att.unknown_fraction
        # The paper's critique: the overwhelming majority is unknown.
        assert unknown > 0.85, (name, unknown)
        # ... while the blame tool names the top variable decisively.
        top = res.report.rows[0]
        assert top.blame > 0.5
        rows.append(
            [name, f"{100*unknown:.2f}%", f"{paper[name]:.2f}%",
             f"{top.name} ({100*top.blame:.0f}%)"]
        )

    record(
        "unknown_data",
        render_table(
            ["Benchmark", "Unknown (measured)", "Unknown (paper)",
             "Blame tool's top variable"],
            rows,
            title="§II.B — HPCToolkit-style attribution vs variable blame",
        ),
    )
