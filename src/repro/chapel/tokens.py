"""Token definitions for the mini-Chapel frontend.

The token set covers the subset of Chapel exercised by the paper's
benchmarks (MiniMD, CLOMP, LULESH) and examples: declarations
(``var``/``const``/``param``/``config``), records, procs with intents,
rectangular domains and arrays, tuples, ``for``/``forall``/``coforall``
loops, zippered iteration, ``select``-``when``, and reductions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    # Literals and identifiers
    IDENT = "ident"
    INT_LIT = "int_lit"
    REAL_LIT = "real_lit"
    STRING_LIT = "string_lit"
    BOOL_LIT = "bool_lit"

    # Keywords
    KW_VAR = "var"
    KW_CONST = "const"
    KW_PARAM = "param"
    KW_CONFIG = "config"
    KW_REF = "ref"
    KW_IN = "in"
    KW_OUT = "out"
    KW_INOUT = "inout"
    KW_PROC = "proc"
    KW_ITER = "iter"
    KW_YIELD = "yield"
    KW_RECORD = "record"
    KW_CLASS = "class"
    KW_RETURN = "return"
    KW_IF = "if"
    KW_THEN = "then"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_FORALL = "forall"
    KW_COFORALL = "coforall"
    KW_ZIP = "zip"
    KW_SELECT = "select"
    KW_WHEN = "when"
    KW_OTHERWISE = "otherwise"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_DOMAIN = "domain"
    KW_SPARSE = "sparse"
    KW_SUBDOMAIN = "subdomain"
    KW_REDUCE = "reduce"
    KW_NEW = "new"
    KW_NIL = "nil"
    KW_USE = "use"
    KW_BY = "by"
    KW_WITH = "with"
    KW_ALIGN = "align"

    # Type keywords
    KW_INT = "int"
    KW_REAL = "real"
    KW_BOOL = "bool"
    KW_STRING = "string"
    KW_VOID = "void"
    KW_RANGE = "range"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOT = "."
    DOTDOT = ".."
    DOTDOTHASH = "..#"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    STARSTAR = "**"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    HASH = "#"
    QUESTION = "?"
    ARROW = "=>"
    EOF = "eof"


#: Reserved words mapped to their token kinds.
KEYWORDS: dict[str, TokenKind] = {
    "var": TokenKind.KW_VAR,
    "const": TokenKind.KW_CONST,
    "param": TokenKind.KW_PARAM,
    "config": TokenKind.KW_CONFIG,
    "ref": TokenKind.KW_REF,
    "in": TokenKind.KW_IN,
    "out": TokenKind.KW_OUT,
    "inout": TokenKind.KW_INOUT,
    "proc": TokenKind.KW_PROC,
    "iter": TokenKind.KW_ITER,
    "yield": TokenKind.KW_YIELD,
    "record": TokenKind.KW_RECORD,
    "class": TokenKind.KW_CLASS,
    "return": TokenKind.KW_RETURN,
    "if": TokenKind.KW_IF,
    "then": TokenKind.KW_THEN,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "for": TokenKind.KW_FOR,
    "forall": TokenKind.KW_FORALL,
    "coforall": TokenKind.KW_COFORALL,
    "zip": TokenKind.KW_ZIP,
    "select": TokenKind.KW_SELECT,
    "when": TokenKind.KW_WHEN,
    "otherwise": TokenKind.KW_OTHERWISE,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "domain": TokenKind.KW_DOMAIN,
    "sparse": TokenKind.KW_SPARSE,
    "subdomain": TokenKind.KW_SUBDOMAIN,
    "reduce": TokenKind.KW_REDUCE,
    "new": TokenKind.KW_NEW,
    "nil": TokenKind.KW_NIL,
    "use": TokenKind.KW_USE,
    "by": TokenKind.KW_BY,
    "with": TokenKind.KW_WITH,
    "align": TokenKind.KW_ALIGN,
    "int": TokenKind.KW_INT,
    "real": TokenKind.KW_REAL,
    "bool": TokenKind.KW_BOOL,
    "string": TokenKind.KW_STRING,
    "void": TokenKind.KW_VOID,
    "range": TokenKind.KW_RANGE,
    "true": TokenKind.BOOL_LIT,
    "false": TokenKind.BOOL_LIT,
}


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token with its source location."""

    kind: TokenKind
    text: str
    loc: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.loc})"
