"""Monitor ingest validation: malformed samples die at the door."""

from repro.sampling.monitor import STACKWALK_CYCLES, Monitor
from repro.sampling.pmu import PMUConfig
from repro.sampling.records import RawSample


class _Thread:
    def __init__(self):
        self.thread_id = 0
        self.clock = 0.0


class _Task:
    task_id = 1
    is_main = True
    spawn = None


def _monitor():
    return Monitor(PMUConfig(threshold=211))


class TestIngestValidation:
    def test_empty_stack_rejected_at_ingest(self):
        m = _monitor()
        m.take_sample(_Thread(), _Task(), [], 5)
        assert m.n_samples == 0 and m.n_quarantined == 1
        assert m.quarantine_by_reason() == {"empty-stack": 1}

    def test_negative_leaf_iid_rejected_at_ingest(self):
        m = _monitor()
        m.take_sample(_Thread(), _Task(), [("kernel", 5)], -3)
        assert m.n_samples == 0 and m.n_quarantined == 1
        assert m.quarantine_by_reason() == {"negative-leaf-iid": 1}

    def test_well_formed_sample_accepted(self):
        m = _monitor()
        m.take_sample(_Thread(), _Task(), [("kernel", 5), ("main", 1)], 5)
        assert m.n_samples == 1 and m.n_quarantined == 0

    def test_idle_sample_exempt_from_validation(self):
        # Idle samples legitimately carry iid -1 on a synthetic frame.
        m = _monitor()
        m.take_sample(_Thread(), None, [("__sched_yield", -1)], -1)
        assert m.n_samples == 1 and m.n_quarantined == 0
        assert m.samples[0].is_idle

    def test_quarantined_sample_still_charged_for_the_walk(self):
        # The stack walk happened before validation could reject the
        # record, so its overhead lands on the thread either way.
        m = _monitor()
        t = _Thread()
        m.take_sample(t, _Task(), [], 5)
        assert t.clock == STACKWALK_CYCLES
        assert m.overhead.n_samples == 1

    def test_quarantined_record_kept_for_diagnosis(self):
        m = _monitor()
        m.take_sample(_Thread(), _Task(), [("kernel", 5)], -3)
        q = m.quarantined[0]
        assert q.reason == "negative-leaf-iid"
        assert q.sample.leaf_iid == -3 and not q.sample.is_idle

    def test_validate_is_pure_and_reusable(self):
        # The postmortem's tolerant path reuses the same predicate.
        good = RawSample(0, 0, 1, (("f", 2),), 2, None, None)
        assert Monitor.validate(good) is None
        assert Monitor.validate(
            RawSample(0, 0, 1, (), 2, None, None)
        ) == "empty-stack"
        assert Monitor.validate(
            RawSample(0, 0, 1, (("f", 2),), -9, None, None)
        ) == "negative-leaf-iid"
