"""Lexer unit tests: token kinds, locations, comments, errors."""

import pytest

from repro.chapel.errors import LexError
from repro.chapel.lexer import tokenize
from repro.chapel.tokens import TokenKind


def kinds(src: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(src)][:-1]  # strip EOF


def texts(src: str) -> list[str]:
    return [t.text for t in tokenize(src)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT_LIT
        assert toks[0].text == "42"

    def test_integer_with_underscores(self):
        toks = tokenize("608_888_809")
        assert toks[0].text == "608888809"

    def test_real_literal(self):
        toks = tokenize("3.25")
        assert toks[0].kind is TokenKind.REAL_LIT
        assert toks[0].text == "3.25"

    def test_real_with_exponent(self):
        assert tokenize("1.5e3")[0].kind is TokenKind.REAL_LIT
        assert tokenize("2e-4")[0].kind is TokenKind.REAL_LIT
        assert tokenize("2E+6")[0].kind is TokenKind.REAL_LIT

    def test_integer_followed_by_range_is_not_real(self):
        # `0..9` must lex as INT DOTDOT INT, not a malformed real.
        assert kinds("0..9") == [TokenKind.INT_LIT, TokenKind.DOTDOT, TokenKind.INT_LIT]

    def test_counted_range_operator(self):
        assert kinds("0..#8") == [
            TokenKind.INT_LIT,
            TokenKind.DOTDOTHASH,
            TokenKind.INT_LIT,
        ]

    def test_identifiers_and_keywords(self):
        toks = tokenize("var forall wibble proc")
        assert [t.kind for t in toks[:-1]] == [
            TokenKind.KW_VAR,
            TokenKind.KW_FORALL,
            TokenKind.IDENT,
            TokenKind.KW_PROC,
        ]

    def test_bool_literals(self):
        toks = tokenize("true false")
        assert all(t.kind is TokenKind.BOOL_LIT for t in toks[:-1])

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind is TokenKind.STRING_LIT
        assert toks[0].text == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\tc\\d"')[0].text == "a\nb\tc\\d"


class TestOperators:
    @pytest.mark.parametrize(
        "src,kind",
        [
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("**", TokenKind.STARSTAR),
            ("+=", TokenKind.PLUS_ASSIGN),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("&&", TokenKind.AND),
            ("||", TokenKind.OR),
            ("=>", TokenKind.ARROW),
            ("..", TokenKind.DOTDOT),
            ("..#", TokenKind.DOTDOTHASH),
        ],
    )
    def test_operator(self, src, kind):
        assert tokenize(src)[0].kind is kind

    def test_star_star_vs_star(self):
        assert kinds("a ** b * c") == [
            TokenKind.IDENT,
            TokenKind.STARSTAR,
            TokenKind.IDENT,
            TokenKind.STAR,
            TokenKind.IDENT,
        ]

    def test_dot_access_vs_range(self):
        assert kinds("a.b") == [TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT]


class TestComments:
    def test_line_comment(self):
        assert kinds("1 // comment here\n2") == [TokenKind.INT_LIT, TokenKind.INT_LIT]

    def test_block_comment(self):
        assert kinds("1 /* hi */ 2") == [TokenKind.INT_LIT, TokenKind.INT_LIT]

    def test_nested_block_comment(self):
        assert kinds("1 /* a /* b */ c */ 2") == [TokenKind.INT_LIT, TokenKind.INT_LIT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b\nccc")
        assert (toks[0].loc.line, toks[0].loc.column) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.column) == (2, 3)
        assert (toks[2].loc.line, toks[2].loc.column) == (3, 1)

    def test_filename_recorded(self):
        toks = tokenize("x", filename="prog.chpl")
        assert toks[0].loc.filename == "prog.chpl"

    def test_location_after_block_comment_with_newlines(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].loc.line == 3


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"no end')

    def test_string_with_newline(self):
        with pytest.raises(LexError):
            tokenize('"line\nbreak"')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestRealisticSnippets:
    def test_minimd_style_declaration(self):
        src = "var Pos: [PosSpace] 3*real;"
        ks = kinds(src)
        assert TokenKind.KW_VAR in ks
        assert TokenKind.STAR in ks
        assert TokenKind.KW_REAL in ks

    def test_forall_zip(self):
        src = "forall (p, a) in zip(A, B) { }"
        ks = kinds(src)
        assert TokenKind.KW_FORALL in ks
        assert TokenKind.KW_ZIP in ks

    def test_int_width(self):
        ks = kinds("var c: int(32) = 0;")
        assert TokenKind.KW_INT in ks
        assert TokenKind.INT_LIT in ks
