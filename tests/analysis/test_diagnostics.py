"""Diagnostics engine unit tests: severities, findings, rendering,
JSON contract, and registry/catalog consistency."""

import json

import pytest

from repro.analysis import (
    PASS_REGISTRY,
    Finding,
    Severity,
    default_passes,
    findings_to_json,
    max_severity,
    render_findings,
)
from repro.analysis.diagnostics import (
    RULE_CATALOG,
    finding_to_dict,
    render_finding,
    sort_key,
)


def mk(rule="zippered-iteration", severity=Severity.WARNING, line=10, **kw):
    defaults = dict(
        message="msg",
        file="t.chpl",
        function="main",
        variables=("x",),
        remediation="fix it",
        iids=(1, 2),
    )
    defaults.update(kw)
    return Finding(rule=rule, severity=severity, line=line, **defaults)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.parse("warning") is Severity.WARNING
        assert Severity.parse(" INFO ") is Severity.INFO

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestFinding:
    def test_where_and_blame(self):
        f = mk(line=42)
        assert f.where == "t.chpl:42"
        assert f.blame is None
        assert f.blame_percent is None
        g = f.with_blame(0.25)
        assert g.blame_percent == 25.0
        assert f.blame is None  # frozen: original untouched

    def test_sort_severity_then_blame_then_position(self):
        a = mk(severity=Severity.INFO, line=1)
        b = mk(severity=Severity.ERROR, line=99)
        c = mk(severity=Severity.WARNING, line=5).with_blame(0.9)
        d = mk(severity=Severity.WARNING, line=2).with_blame(0.1)
        ordered = sorted([a, d, c, b], key=sort_key)
        assert ordered == [b, c, d, a]

    def test_sort_key_is_total(self):
        # Findings differing only in their iid tuples must still order
        # deterministically: the key never falls back to object
        # comparison, so rendered output is byte-stable run to run.
        a = mk(iids=(9, 12))
        b = mk(iids=(3, 4))
        assert sort_key(a) != sort_key(b)
        assert sorted([a, b], key=sort_key) == sorted([b, a], key=sort_key)
        assert sorted([a, b], key=sort_key) == [b, a]

    def test_max_severity(self):
        assert max_severity([]) is None
        assert (
            max_severity([mk(severity=Severity.INFO), mk(severity=Severity.ERROR)])
            is Severity.ERROR
        )


class TestRendering:
    def test_empty(self):
        assert "no findings" in render_findings([])

    def test_footer_counts(self):
        out = render_findings(
            [
                mk(severity=Severity.ERROR),
                mk(severity=Severity.WARNING),
                mk(severity=Severity.WARNING, line=11),
                mk(severity=Severity.INFO),
            ]
        )
        assert "-- 4 finding(s): 1 error, 2 warning, 1 info" in out

    def test_single_finding_fields(self):
        text = render_finding(mk().with_blame(0.5))
        assert "[zippered-iteration]" in text
        assert "t.chpl:10" in text
        assert "(main)" in text
        assert "[blame 50.0%]" in text
        assert "variables: x" in text
        assert "hint: fix it" in text

    def test_title(self):
        assert render_findings([], title="Advisor").startswith("Advisor")


class TestJson:
    def test_roundtrip_fields(self):
        f = mk().with_blame(0.125)
        payload = json.loads(findings_to_json([f]))
        assert payload == [finding_to_dict(f)]
        (d,) = payload
        assert d["severity"] == "warning"
        assert d["rule"] == "zippered-iteration"
        assert d["variables"] == ["x"]
        assert d["iids"] == [1, 2]
        assert d["blame"] == 0.125

    def test_sorted_output(self):
        payload = json.loads(
            findings_to_json(
                [mk(severity=Severity.INFO), mk(severity=Severity.ERROR)]
            )
        )
        assert [d["severity"] for d in payload] == ["error", "info"]


class TestRegistry:
    def test_every_pass_has_a_catalog_entry(self):
        for p in default_passes():
            assert p.name in RULE_CATALOG, p.name

    def test_catalog_rules_all_registered(self):
        names = {p.name for p in default_passes()}
        assert set(RULE_CATALOG) == names

    def test_registry_is_keyed_by_name(self):
        for name, cls in PASS_REGISTRY.items():
            assert cls.name == name
