"""Semantic type tests: unification, assignability, slot counting."""

import pytest

from repro.chapel.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    ArrayType,
    DomainType,
    IntType,
    RealType,
    RecordType,
    TupleType,
    assignable,
    storage_slots,
    unify_numeric,
)

V3 = TupleType((REAL, REAL, REAL))
ATOM = RecordType("atom", (("v", V3), ("f", V3)))
PART = RecordType("Part", (("residue", REAL),), is_class=True)


class TestUnify:
    def test_same_types(self):
        assert unify_numeric(INT, INT) == INT
        assert unify_numeric(REAL, REAL) == REAL

    def test_int_real_promotes(self):
        assert isinstance(unify_numeric(INT, REAL), RealType)
        assert isinstance(unify_numeric(REAL, INT), RealType)

    def test_width_promotion(self):
        assert unify_numeric(IntType(32), IntType(64)) == IntType(64)

    def test_non_numeric_fails(self):
        assert unify_numeric(BOOL, INT) is None
        assert unify_numeric(STRING, REAL) is None


class TestAssignable:
    def test_exact(self):
        assert assignable(INT, INT)
        assert assignable(V3, TupleType((REAL, REAL, REAL)))

    def test_int_to_real_widens(self):
        assert assignable(REAL, INT)
        assert not assignable(INT, REAL)

    def test_int_widths_interchange(self):
        assert assignable(IntType(32), IntType(64))
        assert assignable(IntType(64), IntType(32))

    def test_tuple_elementwise(self):
        assert assignable(V3, TupleType((INT, INT, INT)))
        assert not assignable(V3, TupleType((REAL, REAL)))

    def test_array_by_rank_and_elem(self):
        assert assignable(ArrayType(REAL, 1), ArrayType(REAL, 1))
        assert not assignable(ArrayType(REAL, 1), ArrayType(REAL, 2))
        assert not assignable(ArrayType(REAL, 1), ArrayType(BOOL, 1))


class TestArrayTypeEquality:
    def test_domain_name_is_presentation_only(self):
        a = ArrayType(REAL, 1, domain_name="D")
        b = ArrayType(REAL, 1, domain_name="E")
        assert a == b
        assert hash(a) == hash(b)

    def test_str_shows_domain_name(self):
        assert str(ArrayType(V3, 2, domain_name="PosSpace")) == "[PosSpace] 3*real"


class TestStorageSlots:
    def test_scalars(self):
        assert storage_slots(INT) == 1
        assert storage_slots(REAL) == 1

    def test_tuple(self):
        assert storage_slots(V3) == 3
        assert storage_slots(TupleType((V3, V3))) == 6

    def test_record_flattens(self):
        assert storage_slots(ATOM) == 6

    def test_class_is_a_pointer(self):
        assert storage_slots(PART) == 1

    def test_array_is_a_descriptor(self):
        assert storage_slots(ArrayType(REAL, 1)) == 1


class TestRecordType:
    def test_field_lookup(self):
        assert ATOM.field_type("v") == V3
        assert ATOM.field_index("f") == 1
        assert ATOM.field_type("nope") is None
        assert ATOM.field_index("nope") is None

    def test_str_forms(self):
        assert str(V3) == "3*real"
        assert str(TupleType((INT, REAL))) == "(int, real)"
        assert str(DomainType(2)) == "domain(2)"
        assert str(IntType(32)) == "int(32)"
