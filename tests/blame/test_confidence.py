"""Blame-share confidence intervals: Wilson/bootstrap bounds, the
degradation-widening invariant, and the resolved-pairs Kendall-τ."""

from __future__ import annotations

import pytest

from repro.blame.confidence import (
    BlameInterval,
    blame_intervals,
    bootstrap_interval,
    max_half_width,
    rank_agreement,
    resolved_kendall_tau,
    widen_interval,
    wilson_interval,
    z_value,
)
from repro.blame.report import (
    UNKNOWN_BUCKET,
    BlameReport,
    BlameRow,
    RunStats,
)


def _row(name, blame, samples, context="main"):
    return BlameRow(
        name=name,
        type_str="real",
        blame=blame,
        context=context,
        samples=samples,
        is_path=False,
    )


def _report(rows):
    total = sum(r.samples for r in rows)
    return BlameReport(
        program="t.chpl",
        rows=rows,
        stats=RunStats(total_raw_samples=total, user_samples=total),
    )


class TestZValue:
    def test_standard_quantiles(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-4)
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-4)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_degenerate_confidence(self, bad):
        with pytest.raises(ValueError):
            z_value(bad)


class TestWilson:
    def test_brackets_the_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_extremes_stay_in_bounds(self):
        lo0, hi0 = wilson_interval(0, 50)
        assert lo0 == 0.0 and hi0 < 0.2
        lo1, hi1 = wilson_interval(50, 50)
        assert lo1 > 0.8 and hi1 == 1.0

    def test_no_evidence_is_total_uncertainty(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_evidence(self):
        w_small = wilson_interval(10, 40)
        w_big = wilson_interval(100, 400)
        assert (w_big[1] - w_big[0]) < (w_small[1] - w_small[0])

    def test_higher_confidence_is_wider(self):
        w90 = wilson_interval(30, 100, confidence=0.90)
        w99 = wilson_interval(30, 100, confidence=0.99)
        assert (w99[1] - w99[0]) > (w90[1] - w90[0])


class TestBootstrap:
    def test_deterministic_for_a_seed(self):
        a = bootstrap_interval(30, 100, seed=5)
        b = bootstrap_interval(30, 100, seed=5)
        assert a == b

    def test_brackets_the_point_estimate(self):
        lo, hi = bootstrap_interval(30, 100, seed=1)
        assert lo <= 0.3 <= hi

    def test_no_evidence_is_total_uncertainty(self):
        assert bootstrap_interval(3, 0) == (0.0, 1.0)


class TestWiden:
    def test_clean_is_identity(self):
        assert widen_interval(0.2, 0.4, degraded=0, n=100) == (0.2, 0.4)

    def test_quarantined_widens_never_shrinks(self):
        """The adaptive contract: degraded samples must widen, never
        shrink, the intervals — monotonically in the degraded count."""
        lo, hi = 0.2, 0.4
        prev_lo, prev_hi = lo, hi
        for degraded in (1, 5, 20, 100, 1000):
            wlo, whi = widen_interval(lo, hi, degraded, n=100)
            assert wlo <= prev_lo and whi >= prev_hi
            prev_lo, prev_hi = wlo, whi

    def test_clamped_to_unit_interval(self):
        lo, hi = widen_interval(0.05, 0.95, degraded=10_000, n=10)
        assert lo == 0.0 and hi == 1.0


class TestBlameIntervals:
    def test_tops_only_and_skips_unknown(self):
        rows = [
            BlameRow(UNKNOWN_BUCKET, "", 0.5, UNKNOWN_BUCKET, 50, False),
            _row("a", 0.3, 30),
            _row("b", 0.2, 20),
        ]
        ivs = blame_intervals(_report(rows), total=100, top_n=1)
        assert [iv.name for iv in ivs] == ["a"]
        assert ivs[0].share == pytest.approx(0.3)
        assert ivs[0].key == "main::a"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            blame_intervals(_report([_row("a", 1.0, 10)]), 10, method="mad")

    def test_empty_report_means_no_evidence(self):
        assert max_half_width([]) == 1.0

    def test_half_width_and_row_encoding(self):
        iv = BlameInterval("a", "main", 0.3, 0.25, 0.35)
        assert iv.half_width == pytest.approx(0.05)
        assert iv.as_row() == ["main::a", 0.3, 0.25, 0.35]


class TestResolvedTau:
    def test_true_ties_are_excluded(self):
        """Symmetric arrays (LULESH's hgfx/hgfy/hgfz) have essentially
        identical shares; their arbitrary relative order must not count
        against agreement."""
        clean = _report(
            [_row("big", 0.50, 500), _row("x", 0.201, 201), _row("y", 0.200, 200)]
        )
        swapped = _report(
            [_row("big", 0.50, 500), _row("y", 0.200, 200), _row("x", 0.201, 201)]
        )
        assert resolved_kendall_tau(clean, swapped) == 1.0

    def test_resolved_disagreement_still_counts(self):
        clean = _report([_row("a", 0.6, 600), _row("b", 0.4, 400)])
        flipped = _report([_row("b", 0.4, 400), _row("a", 0.6, 600)])
        assert resolved_kendall_tau(clean, flipped) == -1.0

    def test_no_resolved_pairs_is_agreement(self):
        clean = _report([_row("x", 0.301, 301), _row("y", 0.300, 300)])
        other = _report([_row("y", 0.300, 300), _row("x", 0.301, 301)])
        assert resolved_kendall_tau(clean, other) == 1.0


class TestRankAgreement:
    def test_identical_reports_agree_perfectly(self):
        rep = _report([_row("a", 0.6, 60), _row("b", 0.4, 40)])
        assert rank_agreement(rep, rep) == (1.0, 1.0)

    def test_disjoint_reports_have_no_overlap(self):
        a = _report([_row("a", 1.0, 10)])
        b = _report([_row("b", 1.0, 10)])
        overlap, tau = rank_agreement(a, b)
        assert overlap == 0.0
        assert tau == 1.0  # no shared pairs — no evidence of disagreement
