"""The monitoring process — our stand-in for running under Dyninst.

The interpreter delivers every PMU overflow here; the monitor performs
the "stack walk" (the interpreter already materialized it — we charge
its cost to the sampled thread, which is the measured tool overhead the
paper reports: 0.051 ms/walk against a 241 ms interval ≈ 0.02 %), looks
up the worker task's spawn record, and appends a :class:`RawSample`.

Malformed payloads (an empty walk, a negative instruction id on a
non-idle sample) are rejected at ingest and quarantined with a reason,
instead of flowing downstream and surfacing as confusing attribution
errors far from the cause.  A clean interpreter never produces them;
fault injection and real lossy collectors do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pmu import PMUConfig
from .records import RawSample

#: Simulated cost of one stack walk, charged to the sampled thread.
STACKWALK_CYCLES = 40.0


@dataclass
class OverheadStats:
    """Tool-overhead accounting (paper §V's overhead paragraph)."""

    stackwalk_cycles_total: float = 0.0
    n_samples: int = 0

    def per_walk(self) -> float:
        return self.stackwalk_cycles_total / self.n_samples if self.n_samples else 0.0


@dataclass(frozen=True)
class QuarantinedSample:
    """A sample rejected at ingest, kept for diagnosis."""

    reason: str  # "empty-stack" | "negative-leaf-iid"
    sample: RawSample


class Monitor:
    """Collects raw samples during a run.

    Two modes:

    * **retain** (default): every accepted sample is appended to
      ``self.samples`` — the historical behaviour, used wherever the
      caller wants the raw stream afterwards (``--save-samples``,
      baseline attributors, tests);
    * **sink**: pass a ``sink`` callable and samples are delivered in
      batches of ``batch_size`` as collection proceeds, with only the
      current partial batch resident (``peak_resident`` records the
      high-water mark).  ``self.samples`` stays empty; call
      :meth:`flush` after the run to deliver the final partial batch.

    ``n_accepted`` counts accepted samples in both modes (retain mode
    keeps ``n_accepted == len(self.samples)``), and sample indices are
    assigned from it — so the stream a sink sees is record-for-record
    identical to what retain mode would have stored.

    ``index_base`` positions this monitor inside a larger stream: a
    slice worker collecting the run's samples from position *b* onward
    passes ``index_base=b`` so its records carry the global indices the
    single-monitor run would have assigned (``stream_index`` is the
    global position, ``base + n_accepted``).  The default 0 is the
    whole-run case.
    """

    def __init__(
        self,
        pmu: PMUConfig | None = None,
        charge_overhead: bool = True,
        sink=None,
        batch_size: int = 256,
        index_base: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if index_base < 0:
            raise ValueError("index_base must be >= 0")
        self.pmu = pmu or PMUConfig()
        self.index_base = index_base
        self.samples: list[RawSample] = []
        self.quarantined: list[QuarantinedSample] = []
        self.overhead = OverheadStats()
        self.charge_overhead = charge_overhead
        self.sink = sink
        self.batch_size = batch_size
        #: Accepted-sample count (== ``len(samples)`` in retain mode).
        self.n_accepted = 0
        #: High-water mark of resident (undelivered) samples, sink mode.
        self.peak_resident = 0
        self._batch: list[RawSample] = []
        self._dataset_bytes = 0

    def take_sample(self, thread, task, stack, leaf_iid: int) -> None:
        """Called by the interpreter on PMU overflow."""
        spawn_tag = None
        pre_spawn = None
        task_id = -1
        is_idle = task is None
        if task is not None:
            task_id = task.task_id
            if task.spawn is not None and not task.is_main:
                spawn_tag = task.spawn.tag
                pre_spawn = tuple(task.spawn.pre_spawn_stack)
        self._ingest(
            RawSample(
                index=self.index_base + self.n_accepted,
                thread_id=thread.thread_id,
                task_id=task_id,
                stack=tuple(stack),
                leaf_iid=leaf_iid,
                spawn_tag=spawn_tag,
                pre_spawn_stack=pre_spawn,
                is_idle=is_idle,
            )
        )
        # The walk happened regardless of whether the record survived
        # validation, so its cost is charged either way.
        self.overhead.n_samples += 1
        if self.charge_overhead:
            thread.clock += STACKWALK_CYCLES
            self.overhead.stackwalk_cycles_total += STACKWALK_CYCLES

    def _ingest(self, sample: RawSample) -> None:
        """Validates and stores one sample (injection wrappers hook here)."""
        reason = self.validate(sample)
        if reason is not None:
            self.quarantined.append(QuarantinedSample(reason, sample))
            return
        self.n_accepted += 1
        self._dataset_bytes += 8 + 8 * len(sample.stack)
        if self.sink is None:
            self.samples.append(sample)
            return
        self._batch.append(sample)
        if len(self._batch) > self.peak_resident:
            self.peak_resident = len(self._batch)
        if len(self._batch) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Delivers any buffered partial batch to the sink (sink mode)."""
        if self.sink is not None and self._batch:
            batch, self._batch = self._batch, []
            self.sink(batch)

    @staticmethod
    def validate(sample: RawSample) -> str | None:
        """Returns a rejection reason, or None for a well-formed sample.

        Idle samples are exempt: their synthetic ``__sched_yield`` frame
        legitimately carries iid -1.
        """
        if sample.is_idle:
            return None
        if not sample.stack:
            return "empty-stack"
        if sample.leaf_iid < 0:
            return "negative-leaf-iid"
        return None

    @property
    def n_samples(self) -> int:
        return self.n_accepted

    @property
    def stream_index(self) -> int:
        """Global stream position: accepted samples before this monitor
        started (``index_base``) plus those it accepted itself.  The
        slice machinery's stop conditions compare against this, so a
        slice worker and the whole-run census agree on positions."""
        return self.index_base + self.n_accepted

    def sealed_stream(self) -> bytes:
        """The retained sample stream as CRC-framed record lines — the
        same ``{"c": crc, "s": …}`` framing the v2 dataset journal and
        the ``.cbp`` artifact use (:func:`repro.sampling.dataset.
        crc_line`), so per-slice streams can be byte-compared and
        concatenated: sealing is per-record and indices are global,
        which makes ``b"".join(slice streams) == serial stream``."""
        from .dataset import _sample_to_json, crc_line

        return "".join(
            crc_line("s", _sample_to_json(s)) + "\n" for s in self.samples
        ).encode()

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    def quarantine_by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for q in self.quarantined:
            out[q.reason] = out.get(q.reason, 0) + 1
        return out

    def user_samples(self) -> list[RawSample]:
        """Samples that landed in program (non-idle) code."""
        return [s for s in self.samples if not s.is_idle]

    def dataset_size_bytes(self) -> int:
        """Approximate size of the raw sample dataset (each stack entry
        is one 8-byte address plus an 8-byte record header) — the paper
        reports 6–20 MB per run at its scale.  Accumulated at ingest, so
        it is exact in sink mode too, where the stream is not retained."""
        return self._dataset_bytes


def unseal_samples(blob: bytes) -> "list[RawSample]":
    """Decodes a sealed stream (or a concatenation of sealed slice
    streams) back into samples, verifying every record's CRC.  Raises
    :class:`~repro.errors.DatasetCorruptError` on damage."""
    from ..errors import DatasetCorruptError
    from .dataset import _sample_from_json, check_line

    samples: list[RawSample] = []
    for line in blob.decode().splitlines():
        if not line.strip():
            continue
        kind, payload = check_line(line)
        if kind != "s":
            raise DatasetCorruptError(
                f"unexpected record kind {kind!r} in sealed sample stream"
            )
        samples.append(_sample_from_json(payload))
    return samples
