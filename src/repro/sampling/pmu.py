"""Simulated PMU configuration.

The paper samples PAPI_TOT_CYC with overflow threshold 608,888,809 ("a
large prime" — primes avoid resonance with loop periods).  Our clock is
the cost model's cycle count, so thresholds are proportionally smaller;
:data:`DEFAULT_THRESHOLD` is likewise prime.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's threshold, kept for reference/reporting.
PAPER_THRESHOLD = 608_888_809

#: Default simulated threshold (prime), sized so benchmark-scale runs
#: collect a few thousand samples.
DEFAULT_THRESHOLD = 20_011


def is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def pick_prime_threshold(target: int) -> int:
    """Smallest prime ≥ target — for callers tuning sample density."""
    n = max(2, target)
    while not is_prime(n):
        n += 1
    return n


def counters_drained(counters, threshold: float) -> bool:
    """True when every PMU counter sits in ``[0, threshold)``.

    This is the invariant at an interpreter event-loop safe point: due
    overflows are drained before the scheduler yields, so a counter at
    or past the threshold means the caller is mid-quantum — not a state
    a collection checkpoint may capture or resume from.  (``threshold``
    may be None for an unsampled run; everything is trivially drained.)
    """
    if threshold is None:
        return True
    return all(0.0 <= c < threshold for c in counters)


@dataclass(frozen=True)
class PMUConfig:
    """Sampling configuration: event + overflow threshold."""

    event: str = "PAPI_TOT_CYC"
    threshold: int = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("PMU threshold must be positive")
