"""Dataset persistence + offline analysis tests (the two-process
step-2 → step-3 workflow)."""

import pytest

from repro.compiler.lower import compile_source
from repro.sampling.dataset import (
    DatasetHeader,
    load_samples,
    save_samples,
    source_digest,
)
from repro.tooling.analyze import DatasetMismatch, analyze_dataset
from repro.tooling.cli import main as cli_main
from repro.tooling.profiler import Profiler

SRC = """
var A: [0..49] real;
proc main() {
  forall i in 0..49 { A[i] = sqrt(i * 1.0) + i * 0.25; }
  writeln("ok");
}
"""


def record(tmp_path, source=SRC, threshold=311):
    module = compile_source(source, "prog.chpl", fresh_ids=True)
    res = Profiler(module, num_threads=4, threshold=threshold).profile()
    path = tmp_path / "run.jsonl"
    header = DatasetHeader(
        program="prog.chpl",
        source_sha256=source_digest(source),
        threshold=threshold,
        num_threads=4,
    )
    save_samples(str(path), header, res.monitor.samples)
    return res, str(path)


class TestRoundTrip:
    def test_samples_survive_save_load(self, tmp_path):
        res, path = record(tmp_path)
        header, samples = load_samples(path)
        assert header.threshold == 311
        assert len(samples) == res.monitor.n_samples
        for a, b in zip(res.monitor.samples, samples):
            assert a == b  # RawSample is a frozen dataclass

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_samples(str(p))

    def test_bad_version_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_samples(str(p))


class TestOfflineAnalysis:
    def test_offline_report_matches_online(self, tmp_path):
        res, path = record(tmp_path)
        module, pm, report = analyze_dataset(path, SRC, "prog.chpl")
        # Same samples, recompiled module with identical ids → the
        # blame report agrees with the in-process one.
        assert report.blame_of("A") == pytest.approx(res.report.blame_of("A"))
        assert pm.n_user == res.postmortem.n_user

    def test_source_hash_mismatch_refused(self, tmp_path):
        _res, path = record(tmp_path)
        with pytest.raises(DatasetMismatch):
            analyze_dataset(path, SRC + "\n// edited", "prog.chpl")

    def test_fresh_ids_are_deterministic(self):
        m1 = compile_source(SRC, "p.chpl", fresh_ids=True)
        ids1 = [i.iid for _f, i in m1.all_instructions()]
        m2 = compile_source(SRC, "p.chpl", fresh_ids=True)
        ids2 = [i.iid for _f, i in m2.all_instructions()]
        assert ids1 == ids2


class TestCLIWorkflow:
    def test_record_then_analyze_via_clis(self, tmp_path, capsys):
        src_file = tmp_path / "prog.chpl"
        src_file.write_text(SRC)
        ds = tmp_path / "run.jsonl"

        rc = cli_main(
            [str(src_file), "--threads", "4", "--threshold", "311",
             "--save-samples", str(ds)]
        )
        assert rc == 0
        assert ds.exists()
        capsys.readouterr()

        from repro.tooling.analyze import main as analyze_main

        rc = analyze_main([str(ds), "--source", str(src_file), "--view", "all"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Data-centric view" in out
        assert "A" in out

    def test_analyze_rejects_wrong_source(self, tmp_path, capsys):
        src_file = tmp_path / "prog.chpl"
        src_file.write_text(SRC)
        ds = tmp_path / "run.jsonl"
        assert cli_main([str(src_file), "--save-samples", str(ds)]) == 0
        capsys.readouterr()

        other = tmp_path / "other.chpl"
        other.write_text("proc main() { }")
        from repro.tooling.analyze import main as analyze_main

        assert analyze_main([str(ds), "--source", str(other)]) == 1
        assert "error" in capsys.readouterr().err
