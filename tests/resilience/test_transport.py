"""Transport fault decisions and the CRC result envelope.

Everything here must be a pure function of ``(seed, task, dispatch)`` —
the supervisor's byte-identity contract rests on fault schedules
replaying exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import PayloadCorruptError, SampleFormatError
from repro.resilience.faults import FaultPlan
from repro.resilience.transport import (
    CLEAN_DIRECTIVES,
    ENVELOPE_TAG,
    directives_for,
    seal,
    unseal,
)


class TestGrammar:
    def test_full_transport_spec_parses(self):
        plan = FaultPlan.parse(
            "worker-crash=2;5,worker-kill=0,worker-hang=3,"
            "worker-dead=1,payload-corrupt=4,"
            "worker-crash-rate=0.25,worker-hang-rate=0.1,"
            "payload-corrupt-rate=0.05,"
            "hang-seconds=0.2,init-pickle-fail=1,seed=7"
        )
        assert plan.worker_crash_tasks == (2, 5)
        assert plan.worker_kill_tasks == (0,)
        assert plan.worker_hang_tasks == (3,)
        assert plan.worker_dead_tasks == (1,)
        assert plan.payload_corrupt_tasks == (4,)
        assert plan.worker_crash_rate == 0.25
        assert plan.worker_hang_rate == 0.1
        assert plan.payload_corrupt_rate == 0.05
        assert plan.hang_seconds == 0.2
        assert plan.init_pickle_failures == 1
        assert plan.seed == 7

    def test_transport_and_stream_faults_coexist(self):
        plan = FaultPlan.parse(
            "drop=0.05,truncate=0.1:3,worker-crash=1,seed=42"
        )
        assert plan.drop_rate == 0.05
        assert plan.truncate_depth == 3
        assert plan.worker_crash_tasks == (1,)

    def test_has_transport_faults(self):
        assert not FaultPlan.parse("drop=0.1").has_transport_faults
        for spec in (
            "worker-crash=0", "worker-kill=0", "worker-hang=0",
            "worker-dead=0", "payload-corrupt=0",
            "worker-crash-rate=0.1", "worker-hang-rate=0.1",
            "payload-corrupt-rate=0.1", "init-pickle-fail=2",
        ):
            assert FaultPlan.parse(spec).has_transport_faults, spec

    def test_has_payload_faults_is_the_envelope_switch(self):
        assert FaultPlan.parse("payload-corrupt=1").has_payload_faults
        assert FaultPlan.parse("payload-corrupt-rate=0.5").has_payload_faults
        assert not FaultPlan.parse("worker-crash=1").has_payload_faults

    def test_rate_out_of_range_refused(self):
        with pytest.raises(SampleFormatError, match="worker_crash_rate"):
            FaultPlan.parse("worker-crash-rate=1.5")

    def test_negative_hang_seconds_refused(self):
        with pytest.raises(SampleFormatError, match="hang_seconds"):
            FaultPlan(hang_seconds=-1.0)

    def test_negative_init_failures_refused(self):
        with pytest.raises(SampleFormatError, match="init_pickle_failures"):
            FaultPlan(init_pickle_failures=-1)


class TestDirectives:
    def test_no_plan_is_the_shared_clean_instance(self):
        assert directives_for(None, 0, 0) is CLEAN_DIRECTIVES
        plan = FaultPlan.parse("drop=0.1")  # stream-only plan
        assert directives_for(plan, 0, 0) is CLEAN_DIRECTIVES

    def test_list_faults_fire_on_first_dispatch_only(self):
        plan = FaultPlan.parse(
            "worker-crash=1,worker-kill=2,worker-hang=3,payload-corrupt=0"
        )
        assert directives_for(plan, 1, 0).crash
        assert not directives_for(plan, 1, 1).any
        assert directives_for(plan, 2, 0).kill
        assert not directives_for(plan, 2, 1).any
        assert directives_for(plan, 3, 0).hang
        assert not directives_for(plan, 3, 1).any
        assert directives_for(plan, 0, 0).corrupt
        assert not directives_for(plan, 0, 1).any

    def test_dead_tasks_crash_every_dispatch(self):
        plan = FaultPlan.parse("worker-dead=2")
        for dispatch in range(10):
            assert directives_for(plan, 2, dispatch).crash
        assert not directives_for(plan, 1, 0).any

    def test_hang_carries_the_plan_stall(self):
        plan = FaultPlan.parse("worker-hang=0,hang-seconds=0.5")
        d = directives_for(plan, 0, 0)
        assert d.hang and d.hang_seconds == 0.5
        assert directives_for(plan, 1, 0).hang_seconds == 0.0

    def test_untargeted_tasks_get_the_clean_instance(self):
        plan = FaultPlan.parse("worker-crash=0")
        assert directives_for(plan, 7, 0) is CLEAN_DIRECTIVES

    def test_decisions_replay_exactly(self):
        plan = FaultPlan.parse(
            "worker-crash-rate=0.4,worker-hang-rate=0.3,"
            "payload-corrupt-rate=0.3,seed=11"
        )
        table = [
            directives_for(plan, t, d)
            for t in range(8) for d in range(4)
        ]
        assert table == [
            directives_for(plan, t, d)
            for t in range(8) for d in range(4)
        ]
        assert any(d.any for d in table)  # the rates actually fire

    def test_seed_decorrelates_the_rolls(self):
        a = FaultPlan.parse("worker-crash-rate=0.5,seed=1")
        b = FaultPlan.parse("worker-crash-rate=0.5,seed=2")
        rolls_a = [directives_for(a, t, 0).crash for t in range(64)]
        rolls_b = [directives_for(b, t, 0).crash for t in range(64)]
        assert rolls_a != rolls_b


class TestEnvelope:
    def test_roundtrip(self):
        value = {"shard": 3, "rows": [(1, 2.5), (2, 0.0)]}
        sealed = seal(value)
        assert sealed[0] == ENVELOPE_TAG
        assert unseal(sealed) == value

    def test_corruption_is_detected(self):
        with pytest.raises(PayloadCorruptError, match="CRC"):
            unseal(seal([1, 2, 3], corrupt=True, seed=0))

    def test_corruption_is_deterministic(self):
        assert seal("payload", corrupt=True, seed=5) == seal(
            "payload", corrupt=True, seed=5
        )
        assert seal("payload", corrupt=True, seed=5) != seal(
            "payload", corrupt=True, seed=6
        )

    def test_non_envelope_result_is_corruption(self):
        with pytest.raises(PayloadCorruptError, match="not a sealed"):
            unseal("raw result")
        with pytest.raises(PayloadCorruptError, match="not a sealed"):
            unseal(("wrong-tag", 0, b""))

    def test_tampered_bytes_fail_crc(self):
        tag, crc, payload = seal(42)
        broken = payload[:-1] + bytes([payload[-1] ^ 0xFF])
        with pytest.raises(PayloadCorruptError, match="CRC"):
            unseal((tag, crc, broken))

    def test_unpicklable_payload_reported_as_corrupt(self):
        import zlib

        junk = b"\x80\x05not a pickle"
        with pytest.raises(PayloadCorruptError, match="unpickle"):
            unseal((ENVELOPE_TAG, zlib.crc32(junk), junk))
