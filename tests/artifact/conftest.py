"""Shared fixtures: one cached profile per (benchmark, faults) pair.

Profiling is deterministic (simulated clock, seeded injection), so each
configuration is profiled once per session and shared across tests.
"""

from __future__ import annotations

import pytest

from repro.tooling.profiler import Profiler

#: Small-but-representative configs for the paper's three benchmarks.
BENCHMARKS = ("minimd", "clomp", "lulesh")

#: A plan exercising every degradation channel (tolerant-mode runs).
FAULT_SPEC = "drop=0.05,truncate=0.1:3,tagloss=0.1,strip=0.1,seed=42"

NUM_THREADS = 4
THRESHOLD = 4999


def benchmark_setup(name: str) -> tuple[str, str, dict]:
    """(source, filename, config) for one benchmark."""
    if name == "minimd":
        from repro.bench.programs import minimd

        return (
            minimd.build_source(optimized=False),
            "minimd.chpl",
            minimd.config_for(num_bins=6, per_bin=4, steps=3),
        )
    if name == "clomp":
        from repro.bench.programs import clomp

        return (
            clomp.build_source(optimized=False),
            "clomp.chpl",
            clomp.config_for(num_parts=4, zones_per_part=6, timesteps=3),
        )
    if name == "lulesh":
        from repro.bench.programs import lulesh

        return (
            lulesh.build_source(),
            "lulesh.chpl",
            lulesh.config_for(edge_elems=4, max_steps=2),
        )
    raise ValueError(name)


_CACHE: dict = {}


def profile_benchmark(name: str, faults: str | None = None, **profile_kwargs):
    """Profiles one benchmark (cached per configuration)."""
    key = (name, faults, tuple(sorted(profile_kwargs.items())))
    if key not in _CACHE:
        source, filename, config = benchmark_setup(name)
        _CACHE[key] = Profiler(
            source,
            filename=filename,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
            faults=faults,
        ).profile(**profile_kwargs)
    return _CACHE[key]


@pytest.fixture(params=BENCHMARKS)
def benchmark_name(request):
    return request.param
