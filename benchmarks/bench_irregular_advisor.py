"""I1 — Irregular workloads: the communication advisor fires and ranks.

For the two sparse/irregular workloads (COO SpMV and sparse MTTKRP)
the bench runs the full loop the communication advisor is built for:

* **fire/quiet** — the three communication passes
  (``remote-access-batching``, ``aggregation-candidate``,
  ``indirection-hoist``) fire on the edge-parallel originals and are
  silent on the hand-optimized (inspector-executor / CSR) rewrites —
  and on the dense SpMV baseline, which has no indirection at all;
* **blame join** — a measured profile attributes more blame to the
  indirection arrays (``row``/``col``, the ``mode*`` index arrays) in
  the sparse original than the dense baseline gives them, and the
  ranker attaches a nonzero blame share to the batching advice
  (gated: the advice points at variables the profile actually blames);
* **locality census** — the static classification (LOCAL / REMOTE /
  INDIRECT counts per variant) is recorded; the optimized variants
  must contain zero INDIRECT accesses *inside parallel bodies* other
  than their pure-gather loops.

``n`` is a multiple of the worker count so edge chunks align to
row/slice boundaries: the scatter originals stay deterministic and
every variant prints identical checksums (asserted here).

Everything is deterministic (virtual-clock sampling).  Results land in
``BENCH_irregular.json`` at the repository root.  Run directly
(``python benchmarks/bench_irregular_advisor.py [--quick]``) or via
pytest (``pytest -m irregular benchmarks``); ``--quick`` measures SpMV
only.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.analysis import AnalysisContext, analyze_module, rank_findings
from repro.bench.harness import host_info
from repro.bench.programs import mttkrp, spmv
from repro.compiler.lower import compile_source
from repro.runtime.interpreter import Interpreter
from repro.tooling.profiler import Profiler

NUM_THREADS = 8
THRESHOLD = 997
RESULT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_irregular.json"
)

COMM_RULES = (
    "remote-access-batching",
    "aggregation-candidate",
    "indirection-hoist",
)

#: name -> (module, variants, expected rules on the original,
#:          indirection arrays, profiling config).
WORKLOADS = {
    "spmv": (
        spmv,
        ("original", "optimized", "dense"),
        ("remote-access-batching", "aggregation-candidate"),
        ("row", "col"),
        lambda: spmv.config_for(iters=6),
    ),
    "mttkrp": (
        mttkrp,
        ("original", "optimized"),
        COMM_RULES,
        ("mode1", "mode2", "mode3"),
        lambda: mttkrp.config_for(iters=4),
    ),
}

QUICK_WORKLOADS = ("spmv",)


def _comm_findings(module):
    return [f for f in analyze_module(module) if f.rule in COMM_RULES]


def _locality_census(module) -> dict[str, int]:
    counts = {"local": 0, "remote": 0, "indirect": 0}
    for acc in AnalysisContext(module).locality().accesses.values():
        counts[acc.locality.value] += 1
    return counts


def measure_workload(name: str) -> dict:
    prog, variants, expected_rules, index_arrays, config_for = WORKLOADS[name]
    config = config_for()
    out: dict = {
        "num_threads": NUM_THREADS,
        "threshold": THRESHOLD,
        "config": config,
        "variants": {},
    }
    outputs: dict[str, list[str]] = {}
    reports = {}
    findings_by_variant = {}
    for variant in variants:
        source = prog.build_source(variant)
        module = compile_source(source, f"{name}.chpl")
        findings = _comm_findings(module)
        findings_by_variant[variant] = findings
        run = Interpreter(
            module, config=config, num_threads=NUM_THREADS
        ).run()
        outputs[variant] = run.output
        prof = Profiler(
            source,
            filename=f"{name}.chpl",
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
        ).profile()
        reports[variant] = prof.report
        out["variants"][variant] = {
            "rules_fired": sorted({f.rule for f in findings}),
            "findings": len(findings),
            "locality": _locality_census(module),
            "wall_seconds": prof.report.stats.wall_seconds,
            "user_samples": prof.report.stats.user_samples,
            "indirection_blame": _indirection_share(
                reports[variant], index_arrays
            ),
        }

    # The blame join: rank the original's findings against its own
    # profile and record the batching advice's blame share.
    ranked = rank_findings(
        findings_by_variant["original"], reports["original"]
    )
    batching_blame = max(
        (
            f.blame or 0.0
            for f in ranked
            if f.rule == "remote-access-batching"
        ),
        default=0.0,
    )
    out["batching_advice_blame"] = batching_blame
    out["outputs_identical"] = len({tuple(o) for o in outputs.values()}) == 1
    out["expected_rules"] = sorted(expected_rules)
    out["index_arrays"] = list(index_arrays)
    return out


def _indirection_share(report, index_arrays) -> float:
    return sum(report.blame_of(a) for a in index_arrays)


def run_irregular_bench(quick: bool = False) -> dict:
    names = QUICK_WORKLOADS if quick else tuple(WORKLOADS)
    results = {
        "config": {
            "num_threads": NUM_THREADS,
            "threshold": THRESHOLD,
            "gates": {
                "originals_fire_expected_rules": True,
                "optimized_and_dense_quiet": True,
                "outputs_identical": True,
                "indirection_blame_above_dense": True,
                "batching_advice_blame_positive": True,
            },
            "quick": quick,
        },
        "host": host_info(),
        "workloads": {name: measure_workload(name) for name in names},
    }
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = ["communication advisor on irregular workloads"]
    for name, r in results["workloads"].items():
        for variant, v in r["variants"].items():
            loc = v["locality"]
            lines.append(
                f"  {name}:{variant:9s} rules={','.join(v['rules_fired']) or '-':60s} "
                f"blame({'+'.join(r['index_arrays'])})={100 * v['indirection_blame']:5.1f}%  "
                f"L/R/I={loc['local']}/{loc['remote']}/{loc['indirect']}"
            )
        lines.append(
            f"  {name}: batching advice blame "
            f"{100 * r['batching_advice_blame']:.1f}%, outputs identical: "
            f"{r['outputs_identical']}"
        )
    return "\n".join(lines)


def check_gates(results: dict) -> None:
    for name, r in results["workloads"].items():
        v = r["variants"]
        fired = set(v["original"]["rules_fired"])
        assert fired == set(r["expected_rules"]), (
            f"{name} original fired {sorted(fired)}, "
            f"expected {r['expected_rules']}"
        )
        for variant, data in v.items():
            if variant == "original":
                continue
            assert data["findings"] == 0, (
                f"{name}:{variant} should be quiet, "
                f"fired {data['rules_fired']}"
            )
        assert r["outputs_identical"], f"{name}: variant outputs differ"
        assert r["batching_advice_blame"] > 0.0, (
            f"{name}: ranker attached no blame to the batching advice"
        )
        if "dense" in v:
            assert (
                v["original"]["indirection_blame"]
                >= v["dense"]["indirection_blame"]
            ), (
                f"{name}: original blames the indirection arrays "
                f"{100 * v['original']['indirection_blame']:.1f}%, below the "
                f"dense baseline's "
                f"{100 * v['dense']['indirection_blame']:.1f}%"
            )


@pytest.mark.irregular
def test_irregular_advisor_quick():
    """CI smoke: SpMV fires/goes quiet as designed and the blame join
    ranks the batching advice above zero."""
    results = run_irregular_bench(quick=True)
    print("\n" + render(results))
    check_gates(results)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    results = run_irregular_bench(quick=quick)
    print(render(results))
    check_gates(results)
    print("all gates passed")
