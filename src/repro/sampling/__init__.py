"""Execution-with-sampling substrate: simulated PMU, Dyninst-style
monitor, raw sample records, and address resolution (paper §IV.B–C).
"""

from .monitor import Monitor, OverheadStats, STACKWALK_CYCLES
from .pmu import DEFAULT_THRESHOLD, PAPER_THRESHOLD, PMUConfig, is_prime, pick_prime_threshold
from .records import RawSample
from .sharding import (
    ShardingError,
    shard_bounds,
    shard_bounds_weighted,
    shard_of,
    shard_stream,
    shard_stream_weighted,
)
from .stackwalk import ResolvedFrame, StackResolver

__all__ = [
    "DEFAULT_THRESHOLD",
    "Monitor",
    "OverheadStats",
    "PAPER_THRESHOLD",
    "PMUConfig",
    "RawSample",
    "ResolvedFrame",
    "STACKWALK_CYCLES",
    "ShardingError",
    "StackResolver",
    "is_prime",
    "pick_prime_threshold",
    "shard_bounds",
    "shard_bounds_weighted",
    "shard_of",
    "shard_stream",
    "shard_stream_weighted",
]
