"""Calibration report: prints the measured numbers for every paper
table so cost-model changes can be evaluated at a glance.

Run:  python tools/calibration.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from repro.bench import harness
from repro.bench.programs import clomp, lulesh, minimd
from repro.baselines.hpctk import HpctkAttributor
from repro.baselines.pprof import build_pprof_profile


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--skip", nargs="*", default=[])
    args = ap.parse_args()
    t0 = time.time()

    if "t3" not in args.skip:
        section("Table III: MiniMD speedup (paper: 2.26 w/o fast, 2.56 w/ fast)")
        r = harness.minimd_speedups()
        print(f"w/o fast: {r.speedup('opt', 'orig'):.2f}   "
              f"w/ fast: {r.speedup('opt/fast', 'orig/fast'):.2f}")
        print({k: f"{v.seconds:.4f}" for k, v in r.rows.items()})

    if "t2" not in args.skip:
        section("Table II: MiniMD blame (paper: Pos 96.3, Bins 84.2, RealCount/RealPos 80.8, Count 54.9, binSpace 49.4)")
        prof = harness.minimd_profile(optimized=False)
        for name in ["Pos", "Bins", "RealCount", "RealPos", "Count", "binSpace"]:
            print(f"  {name:10s} {100*prof.report.blame_of(name):6.1f}%")
        print(f"  samples: {prof.postmortem.n_user}")

    if "t5" not in args.skip:
        section("Table V: CLOMP speedups (paper w/o fast: 1.84, 1.09, 2.13, 1.10; w/ fast: 2.59, 2.40, 2.65, 1.96)")
        for label, parts, zones, r in harness.clomp_table_v():
            print(f"  {label:12s} (ours {parts}/{zones}): "
                  f"w/o {r.speedup('opt', 'orig'):.2f}  w/ {r.speedup('opt/fast', 'orig/fast'):.2f}")

    if "t4" not in args.skip:
        section("Table IV: CLOMP blame (paper: partArray 99.5, zone value 99.0, residue 12.3, remaining_deposit 11.8)")
        prof = harness.clomp_profile(optimized=False)
        for name in ["partArray", "->partArray[i]", "->partArray[i].zoneArray[j]",
                     "->partArray[i].zoneArray[j].value", "->partArray[i].residue",
                     "remaining_deposit"]:
            print(f"  {name:36s} {100*prof.report.blame_of(name):6.1f}%")

    if "t7" not in args.skip:
        section("Table VII: LULESH unrolling (paper: Orig 1.00, 0p 1.04, P1 1.07, P2 0.96, P3 1.06, P1+P2 0.99, P1+P3 1.05, P2+P3 0.99, P1+U2 1.03, P1+U3 1.01, P1+U2+U3 0.98)")
        for tag, t, sp in harness.lulesh_table_vii():
            print(f"  {tag:10s} {t:.4f}s  {sp:.2f}")

    if "t9" not in args.skip:
        section("Table IX: LULESH (paper w/o fast: Best 1.38, VG 1.25, P1 1.07, CENN 1.08; w/ fast: 1.47, 1.39, 1.04, 1.02)")
        for tag, d in harness.lulesh_table_ix().items():
            print(f"  {tag:10s} {d['time']:.4f}s {d['speedup']:.2f}   "
                  f"fast: {d['time_fast']:.4f}s {d['speedup_fast']:.2f}")

    if "t6" not in args.skip:
        section("Table VI: LULESH blame (paper: hgf* ~30, sh*/h* ~27, hourgam 25, determ 15.7, b_x 9.7, dvdx 8.3, hourmod* ~5)")
        prof = harness.lulesh_profile()
        for name in ["hgfx", "hgfy", "hgfz", "shx", "hx", "hourgam", "determ",
                     "b_x", "dvdx", "hourmodx"]:
            print(f"  {name:10s} {100*prof.report.blame_of(name):6.1f}%")
        section("Fig 4: pprof LULESH (paper: __sched_yield 79%, coforall_fn top)")
        rows = build_pprof_profile(prof.monitor.samples)
        total = len(prof.monitor.samples)
        for r in rows[:6]:
            print(f"  {r.flat:6d} {100*r.flat/total:5.1f}%  {r.function}")

    if "unknown" not in args.skip:
        section("Unknown data (paper: CLOMP 96.88%, LULESH 95.1%)")
        for name, prof in [("CLOMP", harness.clomp_profile(optimized=False)),
                           ("LULESH", harness.lulesh_profile())]:
            att = HpctkAttributor(prof.module, prof.interpreter)
            res = att.attribute(prof.monitor.samples)
            print(f"  {name}: {100*res.unknown_fraction:.2f}% unknown "
                  f"({res.total} samples)")

    print(f"\n[total {time.time()-t0:.1f}s]")


if __name__ == "__main__":
    main()
