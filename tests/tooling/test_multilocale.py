"""Multi-locale harness tests: SPMD-style partitioning + aggregation."""

import pytest

from repro.tooling.multilocale import profile_locales

SPMD = """
config const localeId: int = 0;
config const numLocales: int = 1;
config const n: int = 120;

var chunk = n / numLocales;
var lo = localeId * chunk;
var hi = lo + chunk - 1;
var A: [0..n-1] real;

proc main() {
  forall i in lo..hi {
    A[i] = sqrt(i * 1.0) + i * 0.5;
  }
  writeln("locale", localeId, "sum", + reduce A);
}
"""


class TestMultiLocale:
    def test_each_locale_does_its_share(self):
        res = profile_locales(SPMD, num_locales=4, num_threads=4, threshold=499)
        assert res.num_locales == 4
        for k, r in enumerate(res.per_locale):
            assert r.run_result.output[0].startswith(f"locale {k}")
            assert r.report.locale_id == k

    def test_merged_report_aggregates_samples(self):
        res = profile_locales(SPMD, num_locales=3, num_threads=4, threshold=499)
        total = sum(r.report.stats.user_samples for r in res.per_locale)
        assert res.merged.stats.user_samples == total
        assert res.merged.locale_id == -1

    def test_merged_blame_consistent_with_locales(self):
        res = profile_locales(SPMD, num_locales=2, num_threads=4, threshold=499)
        per = [r.report.blame_of("A") for r in res.per_locale]
        merged = res.merged.blame_of("A")
        assert min(per) - 0.01 <= merged <= max(per) + 0.01

    def test_single_locale_is_the_base_case(self):
        res = profile_locales(SPMD, num_locales=1, num_threads=4, threshold=499)
        assert res.merged is res.per_locale[0].report

    def test_zero_locales_rejected(self):
        with pytest.raises(ValueError):
            profile_locales(SPMD, num_locales=0)
