"""Confidence intervals on blame shares — treating blame as the sample
estimate it is.

The paper's per-variable blame percentages (Tables II-VI) are binomial
proportions: of ``n`` attributed user samples, ``k`` landed on this
variable.  This module puts intervals around those proportions so the
adaptive collection loop (:mod:`repro.sampling.adaptive`) can decide
*online* whether the ranking is statistically settled:

* :func:`wilson_interval` — the Wilson score interval, the default.
  Closed-form, well-behaved at the extremes (k=0, k=n) where the naive
  normal interval collapses, and deterministic (no resampling noise).
* :func:`bootstrap_interval` — a seeded percentile bootstrap over the
  per-sample blame indicator (multinomial resampling of the stream
  collapsed to the one variable's hit count).  Slower, assumption-free;
  exposed for validation and as the ``method="bootstrap"`` knob.

Degraded telemetry never *narrows* an interval: samples the post-mortem
quarantined or is still holding back as unresolved candidates carry
unknown blame mass, so :func:`widen_interval` stretches each bound by
that degraded fraction.  Monotone by construction — see
``tests/blame/test_confidence.py``.

Rank stability across checkpoints reuses the resilience sweep's
machinery (:func:`repro.resilience.stability.top_n_overlap` /
:func:`~repro.resilience.stability.kendall_tau`) — the question "is the
ranking settling?" is the same question as "did degradation move the
ranking?", asked between consecutive checkpoints instead of between a
clean and a degraded run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import NormalDist

from ..blame.report import UNKNOWN_BUCKET, BlameReport
from ..resilience.stability import kendall_tau, top_n_overlap

#: Interval methods :func:`blame_intervals` accepts.
METHODS = ("wilson", "bootstrap")

#: Resamples for the percentile bootstrap (kept modest: the bootstrap
#: exists for validation; the wilson path is the production default).
BOOTSTRAP_RESAMPLES = 200


@dataclass(frozen=True)
class BlameInterval:
    """One variable's blame share with its confidence bounds."""

    name: str
    context: str
    share: float  # point estimate k/n
    lo: float
    hi: float

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0

    @property
    def key(self) -> str:
        """The ``context::name`` ranking key (matches
        :func:`repro.resilience.stability.ranking`)."""
        return f"{self.context}::{self.name}"

    def as_row(self) -> list:
        """Compact artifact encoding: [key, share, lo, hi]."""
        return [
            self.key,
            round(self.share, 4),
            round(self.lo, 4),
            round(self.hi, 4),
        ]


def z_value(confidence: float) -> float:
    """Two-sided standard-normal critical value for ``confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1) (got {confidence})")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    k: int, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion ``k/n``.

    Returns ``(0.0, 1.0)`` (total uncertainty) when ``n == 0``.
    """
    if n <= 0:
        return (0.0, 1.0)
    z = z_value(confidence)
    p = k / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    spread = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)) ** 0.5)
    return (max(0.0, center - spread), min(1.0, center + spread))


def bootstrap_interval(
    k: int,
    n: int,
    confidence: float = 0.95,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded percentile bootstrap for a binomial proportion.

    Each resample redraws the ``n`` per-sample blame indicators with
    replacement (equivalently: the variable's cell of a multinomial
    resample of the stream) and records the resampled share; the
    interval is the matching percentile band.  Deterministic for a
    given ``seed``.
    """
    if n <= 0:
        return (0.0, 1.0)
    p = k / n
    rng = random.Random(seed)
    shares = sorted(
        sum(1 for _ in range(n) if rng.random() < p) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_ix = min(resamples - 1, max(0, int(alpha * resamples)))
    hi_ix = min(resamples - 1, max(0, int((1.0 - alpha) * resamples) - 1))
    return (shares[lo_ix], shares[hi_ix])


def widen_interval(
    lo: float, hi: float, degraded: int, n: int
) -> tuple[float, float]:
    """Stretches an interval by the degraded-telemetry fraction.

    ``degraded`` samples (quarantined at ingest or post-mortem, or still
    held back as unresolved repair candidates) could each have landed on
    this variable — or not.  Spreading that unknown mass over the
    denominator widens both bounds by ``degraded / (n + degraded)``;
    with no degradation the interval is returned unchanged.  Monotone:
    more degradation can only widen, never shrink.
    """
    if degraded <= 0 or n + degraded <= 0:
        return (lo, hi)
    w = degraded / (n + degraded)
    return (max(0.0, lo - w), min(1.0, hi + w))


def blame_intervals(
    report: BlameReport,
    total: int,
    confidence: float = 0.95,
    top_n: int = 5,
    degraded: int = 0,
    method: str = "wilson",
    seed: int = 0,
) -> list[BlameInterval]:
    """Intervals for the report's top-``top_n`` ranked variables.

    ``total`` is the attribution denominator (user samples so far);
    ``degraded`` feeds :func:`widen_interval`.  The ``<unknown>`` bucket
    is skipped — it *is* the degradation, not a variable.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r} (want one of {METHODS})")
    out: list[BlameInterval] = []
    for row in report.rows:
        if row.name == UNKNOWN_BUCKET:
            continue
        if len(out) >= top_n:
            break
        if method == "bootstrap":
            lo, hi = bootstrap_interval(
                row.samples, total, confidence, seed=seed + len(out)
            )
        else:
            lo, hi = wilson_interval(row.samples, total, confidence)
        lo, hi = widen_interval(lo, hi, degraded, total)
        out.append(
            BlameInterval(
                name=row.name,
                context=row.context,
                share=row.samples / total if total else 0.0,
                lo=lo,
                hi=hi,
            )
        )
    return out


def max_half_width(intervals: list[BlameInterval]) -> float:
    """The widest half-width among ``intervals`` (1.0 when empty — no
    rows means no evidence, not certainty)."""
    if not intervals:
        return 1.0
    return max(iv.half_width for iv in intervals)


def resolved_kendall_tau(
    clean: BlameReport,
    degraded: BlameReport,
    limit: int = 20,
    min_gap: float = 0.005,
) -> float:
    """Kendall-τ over the pairs the profile actually *resolves*.

    Pairs whose blame shares differ by less than ``min_gap`` in the
    reference report are statistical ties: symmetric coordinate arrays
    (LULESH's ``hgfx``/``hgfy``/``hgfz``) have identical true shares,
    so their relative order is arbitrary in any finite run — two *full*
    runs at different sampling thresholds already order them
    differently.  Such pairs are excluded from concordance counting;
    the remaining pairs are scored as tau-a.  1.0 when no resolved
    pairs are shared (no evidence of disagreement).
    """
    share = {
        f"{r.context}::{r.name}": r.blame
        for r in clean.rows
        if r.name != UNKNOWN_BUCKET
    }
    from ..resilience.stability import ranking

    a = ranking(clean, limit)
    b = ranking(degraded, limit)
    pos_a = {k: i for i, k in enumerate(a)}
    pos_b = {k: i for i, k in enumerate(b)}
    common = [k for k in a if k in pos_b]
    concordant = discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            ki, kj = common[i], common[j]
            if abs(share[ki] - share[kj]) < min_gap:
                continue  # unresolved tie — order is arbitrary
            da = pos_a[ki] - pos_a[kj]
            db = pos_b[ki] - pos_b[kj]
            if da * db > 0:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 1.0


def rank_agreement(
    prev: BlameReport, cur: BlameReport, top_n: int = 5, limit: int = 20
) -> tuple[float, float]:
    """(top-N overlap, Kendall-τ) between consecutive checkpoints.

    Thin wrapper over the resilience stability metrics so the stopping
    rule and the fault-injection sweep share one definition of "same
    ranking"."""
    return (top_n_overlap(prev, cur, n=top_n), kendall_tau(prev, cur, limit=limit))
