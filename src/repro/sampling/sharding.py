"""Deterministic sharding of one locale's sample stream (paper §IV.C).

Post-mortem processing is "embarrassingly parallel" once the stream is
split, *provided the split is safe*.  Safety here means two invariants,
both enforced by construction:

* **stack-complete batches** — a shard boundary never falls inside a
  sample: every :class:`~repro.sampling.records.RawSample` carries its
  whole stack walk (and, for worker tasks, the recorded pre-spawn
  continuation), so any per-sample partition preserves every call path
  intact.  Nothing a consolidator needs for one sample lives in another
  shard's bytes;
* **order preservation** — shards are *contiguous* runs of the stream,
  so concatenating per-shard outputs in shard order reproduces exactly
  the stream-order outputs of an unsharded pass.  This is what makes
  the parallel pipeline's merged artifact byte-identical to the serial
  one, rather than merely equivalent.

Degradation composes with sharding because the fault injector's
streaming degrader is chunking-invariant (the fate of the k-th busy
sample depends only on the plan seed and k): the driver degrades the
stream *before* splitting it, so every shard sees the same degraded
records a serial pass would have seen.

The splitter is pure arithmetic — no RNG, no load measurement — so the
same ``(stream length, shard count)`` pair always yields the same
bounds, on every host and in every process.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from ..errors import ReproError

T = TypeVar("T")


class ShardingError(ReproError):
    """An invalid shard request (bad shard count)."""


def shard_bounds(n_items: int, num_shards: int) -> list[tuple[int, int]]:
    """Half-open ``[start, stop)`` bounds of each contiguous shard.

    Items are spread as evenly as possible: shard sizes differ by at
    most one, with the larger shards first (``i * n // k`` arithmetic).
    ``num_shards`` may exceed ``n_items``; the surplus shards are empty
    — an empty shard merges as the identity downstream.
    """
    if num_shards < 1:
        raise ShardingError(f"need at least one shard (got {num_shards})")
    if n_items < 0:
        raise ShardingError(f"negative stream length {n_items}")
    return [
        (n_items * i // num_shards, n_items * (i + 1) // num_shards)
        for i in range(num_shards)
    ]


def slice_points(n_samples: int, num_slices: int) -> list[int]:
    """Interior cut positions for partitioning one run's *collection*
    into ``num_slices`` simulated-time slices.

    Same ``n*i//k`` arithmetic as :func:`shard_bounds`, expressed as the
    strictly-increasing accepted-sample counts where one collector hands
    off to the next (so the boundary list for ``k`` slices has at most
    ``k-1`` entries; fewer when the stream is shorter than the slice
    count).  The slice machinery tolerates *any* monotone cut set — the
    identity proof does not depend on balance — so this is a balance
    policy, not a correctness requirement.
    """
    if num_slices < 1:
        raise ShardingError(f"need at least one slice (got {num_slices})")
    if n_samples < 0:
        raise ShardingError(f"negative stream length {n_samples}")
    return sorted(
        {n_samples * i // num_slices for i in range(1, num_slices)}
        - {0, n_samples}
    )


def shard_stream(items: Sequence[T], num_shards: int) -> list[list[T]]:
    """Splits ``items`` into ``num_shards`` contiguous, balanced shards.

    ``sum(shards, []) == list(items)`` always holds — the split is a
    partition that preserves stream order, never a reordering.
    """
    return [
        list(items[start:stop])
        for start, stop in shard_bounds(len(items), num_shards)
    ]


def shard_bounds_weighted(
    weights: Sequence[int], num_shards: int
) -> list[tuple[int, int]]:
    """Contiguous shard bounds balanced by *weight* instead of count.

    Per-sample post-mortem cost is not uniform (a glued worker-task
    sample costs several times an ungled one), so count-balanced shards
    can be badly work-imbalanced.  This splitter keeps the contiguity
    invariant — only the cut points move — and places cut *i* at the
    first prefix whose weight reaches ``i/num_shards`` of the total:
    pure integer arithmetic, same bounds on every host.

    Weights must be positive integers; surplus shards are empty.
    """
    if num_shards < 1:
        raise ShardingError(f"need at least one shard (got {num_shards})")
    if any(w < 1 for w in weights):
        raise ShardingError("weights must be positive integers")
    total = sum(weights)
    cuts = [0]
    prefix = 0
    idx = 0
    for i in range(1, num_shards):
        target = total * i  # compare prefix * num_shards >= total * i
        while idx < len(weights) and prefix * num_shards < target:
            prefix += weights[idx]
            idx += 1
        cuts.append(idx)
    cuts.append(len(weights))
    return list(zip(cuts, cuts[1:]))


def shard_stream_weighted(
    items: Sequence[T], num_shards: int, weight
) -> list[list[T]]:
    """Splits ``items`` into contiguous shards of near-equal total
    ``weight(item)``.  Like :func:`shard_stream`,
    ``sum(shards, []) == list(items)`` always holds."""
    bounds = shard_bounds_weighted([weight(x) for x in items], num_shards)
    return [list(items[start:stop]) for start, stop in bounds]


def shard_of(index: int, n_items: int, num_shards: int) -> int:
    """Which shard of ``shard_bounds(n_items, num_shards)`` holds
    position ``index`` (for provenance/debugging)."""
    if not 0 <= index < n_items:
        raise ShardingError(
            f"index {index} outside stream of length {n_items}"
        )
    # Inverse of the bounds arithmetic: the shard whose start is the
    # largest one <= index.
    k = (index * num_shards + num_shards - 1) // max(n_items, 1)
    for shard in range(min(k, num_shards - 1), -1, -1):
        start, stop = (
            n_items * shard // num_shards,
            n_items * (shard + 1) // num_shards,
        )
        if start <= index < stop:
            return shard
    raise ShardingError(f"no shard holds index {index}")  # pragma: no cover
