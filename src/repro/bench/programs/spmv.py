"""SpMV — sparse matrix-vector multiply, mini-Chapel port.

The canonical irregular kernel of the Rolinger et al. line of work:
a COO-format sparse matrix drives indirection-addressed accesses
(``y[row[e]] += Aval[e] * x[col[e]]``), the access pattern whose
fine-grained remote traffic dominates multi-locale runs.

Three variants:

* **original** — edge-parallel COO scatter: every task reads ``x``
  through ``col`` (a gather per element) and read-modify-writes ``y``
  through ``row`` (a scattered update per element).  The
  communication advisor must flag both (remote-access-batching and
  aggregation-candidate).
* **optimized** — the hand rewrite the advisor recommends: an
  inspector-executor bulk gather of ``x`` into edge order
  (``xg[e] = x[col[e]]`` — a *pure* gather, deliberately not a
  finding), then a row-parallel CSR loop accumulating into a local
  scalar with one aligned store per row (``y[i] = acc`` is provably
  local).  Zero communication findings.
* **dense** — a dense row-parallel baseline over an ``n x n`` matrix:
  no indirection anywhere, used as the blame-share reference for the
  indirection arrays.

All variants share a small sparse-subdomain / associative-domain
pattern prologue (the new irregular-domain frontend features), and all
produce identical checksums.

The COO data is arithmetic — ``row`` sorted with ``nnzPerRow`` entries
per row — so the CSR row pointers are computable in-program and, when
``n`` divides the task count, edge chunks align to row boundaries
(the edge-parallel scatter stays deterministic).
"""

from __future__ import annotations

# Default problem size: tuned for the interpreter; keep n a multiple
# of the bench harness's task counts so edge chunks align to rows.
DEFAULT_CONFIG: dict[str, object] = {
    "n": 64,
    "nnzPerRow": 4,
    "iters": 2,
}

_PRELUDE = """
// SpMV (mini-Chapel port) -- sparse matrix-vector multiply, COO/CSR
config const n: int = 64;
config const nnzPerRow: int = 4;
config const iters: int = 2;

var Dn: domain(1) = {1..n};
var Dn1: domain(1) = {1..n+1};
var De: domain(1) = {1..n*nnzPerRow};

var row: [De] int;
var col: [De] int;
var Aval: [De] real;
var x: [Dn] real;
var y: [Dn] real;

// Irregular-domain pattern prologue: a sparse subdomain holding a
// small corner of the matrix pattern plus an associative histogram of
// the columns it touches (exercises the sparse/associative runtime).
var P2: domain(2) = {1..8, 1..8};
var spD: sparse subdomain(P2);
var spA: [spD] real;
var touched: domain(int);
var hits: [touched] int;

proc initData() {
  forall i in Dn {
    x[i] = 1.0 + (i % 5) * 0.25;
    y[i] = 0.0;
  }
  forall e in De {
    row[e] = (e - 1) / nnzPerRow + 1;
    col[e] = ((e * 13) % n) + 1;
    Aval[e] = 0.01 * ((e % 7) + 1);
  }
}

proc patternStats(): int {
  for k in 1..8 {
    var j = ((k * 3) % 8) + 1;
    spD += (k, j);
    spA[k, j] = k * 0.5;
    touched += j;
    hits[j] += 1;
  }
  var s = 0;
  forall idx in spD with (+ reduce s) {
    s += idx[0] + idx[1];
  }
  var h = 0;
  for j in touched {
    h += hits[j];
  }
  return s + spD.size() + touched.size() + h;
}

proc checksum(): real {
  var s = 0.0;
  for i in 1..n {
    s += y[i] * i;
  }
  return s;
}
"""

_KERNEL_ORIGINAL = """
proc spmv() {
  forall i in Dn {
    y[i] = 0.0;
  }
  // edge-parallel COO scatter: per-element gather of x through col,
  // scattered read-modify-write of y through row
  forall e in De {
    y[row[e]] += Aval[e] * x[col[e]];
  }
}

proc setup() {
}
"""

_KERNEL_OPTIMIZED = """
var rowPtr: [Dn1] int;
var xg: [De] real;

proc setup() {
  // row is sorted with a fixed stride by construction: the CSR row
  // pointers are arithmetic
  forall i in Dn1 {
    rowPtr[i] = (i - 1) * nnzPerRow + 1;
  }
}

proc gatherX() {
  // inspector-executor: one bulk gather of the indirectly-addressed
  // x elements into edge order (a pure gather -- not a finding)
  forall e in De {
    xg[e] = x[col[e]];
  }
}

proc spmv() {
  gatherX();
  // row-parallel CSR: contiguous window per row, local accumulator,
  // one aligned (provably local) store per row
  forall i in Dn {
    var acc = 0.0;
    for j in rowPtr[i]..rowPtr[i+1]-1 {
      acc += Aval[j] * xg[j];
    }
    y[i] = acc;
  }
}
"""

_KERNEL_DENSE = """
var D2: domain(2) = {1..n, 1..n};
var Ad: [D2] real;

proc setup() {
  forall i in Dn {
    for j in 1..n {
      Ad[i, j] = 0.0;
    }
  }
  for e in De {
    Ad[row[e], col[e]] = Ad[row[e], col[e]] + Aval[e];
  }
}

proc spmv() {
  // dense row-parallel baseline: direct indexing only
  forall i in Dn {
    var acc = 0.0;
    for j in 1..n {
      acc += Ad[i, j] * x[j];
    }
    y[i] = acc;
  }
}
"""

_MAIN = """
proc main() {
  initData();
  var sp = patternStats();
  setup();
  for it in 1..iters {
    spmv();
  }
  writeln("checksum", checksum());
  writeln("pattern", sp);
}
"""

VARIANTS = ("original", "optimized", "dense")


def build_source(variant: str = "original", optimized: bool = False) -> str:
    """Returns mini-Chapel source for the requested SpMV variant."""
    if optimized:
        variant = "optimized"
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown spmv variant {variant!r} (want {'|'.join(VARIANTS)})"
        )
    kernel = {
        "original": _KERNEL_ORIGINAL,
        "optimized": _KERNEL_OPTIMIZED,
        "dense": _KERNEL_DENSE,
    }[variant]
    return "\n".join([_PRELUDE, kernel, _MAIN])


def config_for(
    n: int | None = None,
    nnz_per_row: int | None = None,
    iters: int | None = None,
) -> dict[str, object]:
    cfg = dict(DEFAULT_CONFIG)
    if n is not None:
        cfg["n"] = n
    if nnz_per_row is not None:
        cfg["nnzPerRow"] = nnz_per_row
    if iters is not None:
        cfg["iters"] = iters
    return cfg
