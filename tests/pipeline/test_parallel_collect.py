"""Sliced parallel collection: byte-identity of the reassembled stream,
monitor and artifact across worker counts, backends and transport-fault
schedules (the tentpole guarantee: ``--collect-workers N`` changes wall
time, never bytes)."""

from __future__ import annotations

import pytest

from repro.artifact.format import artifact_bytes
from repro.artifact.model import snapshot_from_result
from repro.errors import ParallelError
from repro.pipeline.parallel import parallel_collect
from repro.pipeline.stages import collect_stage, compile_stage
from repro.pipeline.supervisor import SupervisorConfig
from repro.resilience.faults import FaultPlan
from repro.tooling.profiler import Profiler

from .conftest import FAULT_SPEC, NUM_THREADS, THRESHOLD, benchmark_setup

_SETUP: dict = {}


def setup_for(name: str):
    """(module, config, serial Collection) — one serial witness per
    benchmark, shared across the suite."""
    if name not in _SETUP:
        source, filename, config = benchmark_setup(name)
        module = compile_stage(source, filename)
        serial = collect_stage(
            module, config=config, num_threads=NUM_THREADS, threshold=THRESHOLD
        )
        _SETUP[name] = (module, config, serial)
    return _SETUP[name]


def sliced(name: str, workers: int, backend: str = "inline", **kw):
    module, config, _ = setup_for(name)
    return parallel_collect(
        module,
        workers,
        backend=backend,
        config=config,
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
        **kw,
    )


def assert_identical(pc, serial) -> None:
    assert pc.sealed_stream == serial.monitor.sealed_stream()
    assert b"".join(pc.slice_streams) == pc.sealed_stream
    assert pc.monitor.samples == serial.monitor.samples
    assert pc.monitor.n_accepted == serial.monitor.n_accepted
    assert (
        pc.monitor.dataset_size_bytes() == serial.monitor.dataset_size_bytes()
    )
    assert (
        pc.monitor.overhead.stackwalk_cycles_total
        == serial.monitor.overhead.stackwalk_cycles_total
    )
    rr, sr = pc.run_result, serial.run_result
    assert rr.output == sr.output
    assert rr.wall_seconds == sr.wall_seconds
    assert rr.total_cycles == sr.total_cycles
    assert rr.idle_cycles == sr.idle_cycles
    assert rr.busy_cycles == sr.busy_cycles
    assert rr.instructions_executed == sr.instructions_executed


class TestInlineIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_minimd_worker_sweep(self, workers):
        _, _, serial = setup_for("minimd")
        pc = sliced("minimd", workers)
        assert_identical(pc, serial)
        assert len(pc.slice_counts) == workers
        assert sum(pc.slice_counts) == serial.monitor.n_accepted

    @pytest.mark.parametrize("bench", ["clomp", "lulesh"])
    def test_other_benchmarks(self, bench):
        _, _, serial = setup_for(bench)
        assert_identical(sliced(bench, 4), serial)

    def test_census_cache_warms_and_stays_identical(self):
        _, _, serial = setup_for("minimd")
        cold = sliced("minimd", 4, use_census_cache=False)
        warm1 = sliced("minimd", 4)
        warm2 = sliced("minimd", 4)
        assert not cold.census_cached and cold.census_seconds > 0.0
        assert warm2.census_cached and warm2.census_seconds == 0.0
        for pc in (cold, warm1, warm2):
            assert_identical(pc, serial)

    def test_accounting(self):
        pc = sliced("minimd", 3)
        assert pc.workers == 3 and pc.backend == "inline"
        assert len(pc.slice_seconds) == 3
        assert pc.critical_path_seconds >= max(pc.slice_seconds)
        assert pc.recovered_slices == ()
        assert pc.supervision is None
        assert pc.interpreter.num_threads == NUM_THREADS
        assert pc.interpreter.heap is pc.run_result.heap


class TestProcessBackend:
    def test_minimd_byte_identical(self):
        _, _, serial = setup_for("minimd")
        assert_identical(sliced("minimd", 3, backend="process"), serial)

    def test_supervised_process_pool(self):
        _, _, serial = setup_for("minimd")
        pc = sliced(
            "minimd",
            2,
            backend="process",
            supervision=SupervisorConfig(backoff=0.0),
        )
        assert_identical(pc, serial)
        assert pc.supervision is not None


class TestTransportFaults:
    """Slice dispatches inherit the shard supervisor's fault machinery;
    every schedule must preserve the stream bytes exactly."""

    @pytest.mark.parametrize(
        "spec",
        [
            "worker-crash=0;2",
            "worker-kill=1",
            "payload-corrupt=2",
            "worker-hang=1,hang-seconds=20",
        ],
    )
    def test_retryable_schedules(self, spec):
        _, _, serial = setup_for("minimd")
        cfg = SupervisorConfig(
            plan=FaultPlan.parse(spec),
            backoff=0.0,
            max_retries=2,
            timeout=0.5,
        )
        pc = sliced("minimd", 3, supervision=cfg)
        assert_identical(pc, serial)
        assert pc.recovered_slices == ()
        assert pc.supervision.retries >= 1

    def test_exhausted_slice_replays_inline(self):
        # worker-dead fails every dispatch; the parent must re-collect
        # the slice itself (collection has no <unknown> to degrade to).
        _, _, serial = setup_for("minimd")
        cfg = SupervisorConfig(
            plan=FaultPlan.parse("worker-dead=1"), backoff=0.0, max_retries=1
        )
        pc = sliced("minimd", 3, supervision=cfg)
        assert_identical(pc, serial)
        assert pc.recovered_slices == (1,)


class TestCollectStageRouting:
    def test_workers_gt_one_slices(self):
        module, config, serial = setup_for("minimd")
        coll = collect_stage(
            module,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
            workers=3,
            backend="inline",
        )
        assert coll.parallel is not None
        assert coll.parallel.sealed_stream == serial.monitor.sealed_stream()
        assert coll.monitor.samples == serial.monitor.samples
        assert coll.interpreter.num_threads == NUM_THREADS

    def test_sink_is_rejected(self):
        module, config, _ = setup_for("minimd")
        with pytest.raises(ValueError):
            collect_stage(
                module,
                config=config,
                num_threads=NUM_THREADS,
                threshold=THRESHOLD,
                workers=2,
                backend="inline",
                sink=lambda batch: None,
            )

    def test_validation(self):
        module, config, _ = setup_for("minimd")
        with pytest.raises(ParallelError):
            parallel_collect(module, 0, config=config, threshold=THRESHOLD)
        with pytest.raises(ParallelError):
            parallel_collect(module, 2, config=config, threshold=0)
        with pytest.raises(ParallelError):
            parallel_collect(
                module, 2, backend="bogus", config=config, threshold=THRESHOLD
            )


class TestProfilerIntegration:
    def _profile(self, faults=None, streaming=False, adaptive=None, **kw):
        source, filename, config = benchmark_setup("minimd")
        return Profiler(
            source,
            filename,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
            faults=faults,
            **kw,
        ).profile(streaming=streaming, adaptive=adaptive)

    def _bytes(self, result):
        return artifact_bytes(
            snapshot_from_result(
                result, threshold=THRESHOLD, canonical_timings=True
            )
        )

    def test_artifact_bytes_identical_clean(self):
        base = self._profile()
        pc = self._profile(collect_workers=4, parallel_backend="inline")
        assert pc.collect_parallel is not None
        assert self._bytes(base) == self._bytes(pc)

    def test_artifact_bytes_identical_with_stream_faults(self):
        # Stream degradation happens after collection in the parent, so
        # it composes with slicing without touching the identity.
        base = self._profile(faults=FAULT_SPEC)
        pc = self._profile(
            faults=FAULT_SPEC, collect_workers=3, parallel_backend="inline"
        )
        assert self._bytes(base) == self._bytes(pc)

    def test_composes_with_sharded_postmortem(self):
        base = self._profile()
        both = self._profile(
            workers=3, collect_workers=3, parallel_backend="inline"
        )
        assert both.parallel is not None
        assert both.collect_parallel is not None
        assert self._bytes(base) == self._bytes(both)

    def test_adaptive_is_rejected(self):
        with pytest.raises(ParallelError):
            self._profile(collect_workers=2, parallel_backend="inline",
                          adaptive=True)

    def test_streaming_is_rejected(self):
        with pytest.raises(ParallelError):
            self._profile(collect_workers=2, parallel_backend="inline",
                          streaming=True)
